module T = Sevsnp.Types
module P = Sevsnp.Platform
module K = Guest_kernel.Kernel

type outcome =
  | Blocked_npf of T.npf_info
  | Blocked_error of string
  | Blocked_sanitizer of string
  | Blocked_crypto of string
  | Breached of string

let outcome_to_string = function
  | Blocked_npf info -> Format.asprintf "blocked: CVM halted, %a" T.pp_npf info
  | Blocked_error e -> "blocked: " ^ e
  | Blocked_sanitizer e -> "blocked by sanitizer: " ^ e
  | Blocked_crypto e -> "blocked by attestation/crypto: " ^ e
  | Breached e -> "BREACHED: " ^ e

let is_blocked = function Breached _ -> false | _ -> true

type t = { name : string; description : string; exec : unit -> outcome }

let name t = t.name
let description t = t.description
let run t = t.exec ()

let attack_npages = 2048

let fresh () = Veil_core.Boot.boot_veil ~npages:attack_npages ~seed:31 ()

(* Convert raised platform faults into outcomes. *)
let catching f =
  try f () with
  | T.Npf info -> Blocked_npf info
  | T.Cvm_halted reason -> Blocked_error ("CVM halted: " ^ reason)

let mk name description exec = { name; description; exec = (fun () -> catching exec) }

(* --- helpers --- *)

let os_write_gpa (sys : Veil_core.Boot.veil_system) gpa =
  (* The compromised kernel's arbitrary-write gadget. *)
  P.write sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu gpa (Bytes.of_string "pwned");
  Breached "wrote to protected memory without a fault"

let os_read_gpa (sys : Veil_core.Boot.veil_system) gpa =
  ignore (P.read sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu gpa 16);
  Breached "read protected memory without a fault"

let make_enclave sys =
  let proc = K.spawn sys.Veil_core.Boot.kernel in
  let binary = Bytes.of_string (String.make 5000 'E') in
  match Enclave_sdk.Runtime.create sys ~binary proc with
  | Ok rt -> rt
  | Error e -> failwith ("attack setup: " ^ e)

(* --- Table 1: framework attacks --- *)

let atk_boot_image =
  mk "boot-malicious-image"
    "substitute the measured boot image and try to pass remote attestation (Table 1, boot-time)"
    (fun () ->
      (* Reference deployment the user expects... *)
      let good = Veil_core.Boot.boot_veil ~npages:attack_npages ~seed:31 () in
      let expected = Sevsnp.Attestation.launch_measurement good.Veil_core.Boot.platform.P.attestation in
      (* ...and the attacker's CVM booted from a different disk. *)
      let evil = Veil_core.Boot.boot_veil ~npages:attack_npages ~seed:666 () in
      let user =
        Veil_core.Channel.create (Veil_crypto.Rng.create 1)
          ~platform_public:(Sevsnp.Attestation.platform_public_key evil.Veil_core.Boot.platform.P.attestation)
          ~expected_launch:expected
      in
      match Veil_core.Channel.connect user evil.Veil_core.Boot.mon evil.Veil_core.Boot.vcpu with
      | Ok () -> Breached "remote user accepted a tampered boot image"
      | Error e -> Blocked_crypto (Veil_core.Channel.error_to_string e))

let atk_read_mon =
  mk "read-dom-mon" "compromised OS reads VeilMon heap memory (Table 1, domain enforcement)"
    (fun () ->
      let sys = fresh () in
      os_read_gpa sys (T.gpa_of_gpfn (sys.Veil_core.Boot.layout.Veil_core.Layout.mon_heap.Veil_core.Layout.lo + 2)))

let atk_write_sec =
  mk "write-dom-sec" "compromised OS overwrites the VeilS-LOG storage region (Table 1)"
    (fun () ->
      let sys = fresh () in
      os_write_gpa sys (T.gpa_of_gpfn sys.Veil_core.Boot.layout.Veil_core.Layout.log_region.Veil_core.Layout.lo))

let atk_rmpadjust_lift =
  mk "rmpadjust-lift"
    "compromised OS executes RMPADJUST to regain access to a protected frame (Table 1)"
    (fun () ->
      let sys = fresh () in
      match
        P.rmpadjust sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu
          ~gpfn:sys.Veil_core.Boot.layout.Veil_core.Layout.mon_heap.Veil_core.Layout.lo ~target:T.Vmpl3 ~perms:Sevsnp.Perm.all
          ~vmsa:false ()
      with
      | Ok () -> Breached "RMPADJUST lifted VMPL restrictions from Dom_UNT"
      | Error e -> Blocked_error e)

let atk_rmpadjust_priv =
  mk "rmpadjust-privilege"
    "compromised OS tries RMPADJUST against a more privileged VMPL (architectural check)"
    (fun () ->
      let sys = fresh () in
      let own_frame = sys.Veil_core.Boot.layout.Veil_core.Layout.kernel_free.Veil_core.Layout.lo in
      match
        P.rmpadjust sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~gpfn:own_frame ~target:T.Vmpl1
          ~perms:Sevsnp.Perm.none ~vmsa:false ()
      with
      | Ok () -> Breached "Dom_UNT adjusted Dom_SEC permissions"
      | Error e -> Blocked_error e)

let atk_write_vmsa =
  mk "overwrite-registers"
    "compromised OS overwrites a trusted domain's saved register state (VMSA) (Table 1)"
    (fun () ->
      let sys = fresh () in
      let vmsa = Veil_core.Monitor.vmsa_of sys.Veil_core.Boot.mon ~vcpu_id:0 ~dom:Veil_core.Privdom.Sec in
      os_write_gpa sys (T.gpa_of_gpfn vmsa.Sevsnp.Vmsa.backing_gpfn))

let atk_write_protected_pt =
  mk "overwrite-page-tables"
    "compromised OS overwrites enclave page tables kept in Dom_SEC (Table 1 / §8.3 validation)"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      let root = Veil_core.Encsvc.pt_root (Enclave_sdk.Runtime.enclave rt) in
      os_write_gpa sys (T.gpa_of_gpfn root))

let atk_spawn_vcpu_rmpadjust =
  mk "spawn-vcpu-vmsa-attr"
    "compromised OS marks its own frame as a VMSA to spawn a privileged VCPU (Table 1)"
    (fun () ->
      let sys = fresh () in
      let frame = K.alloc_frame sys.Veil_core.Boot.kernel in
      match
        P.rmpadjust sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~gpfn:frame ~target:T.Vmpl0
          ~perms:Sevsnp.Perm.all ~vmsa:true ()
      with
      | Ok () -> Breached "Dom_UNT created a VMSA"
      | Error e -> Blocked_error e)

let atk_spawn_vcpu_hypercall =
  mk "spawn-vcpu-hypercall"
    "compromised OS asks the hypervisor to run a forged VMSA at VMPL-0 (Table 1)"
    (fun () ->
      let sys = fresh () in
      let frame = K.alloc_frame sys.Veil_core.Boot.kernel in
      (* write plausible VMSA bytes, then request a launch *)
      P.write sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu (T.gpa_of_gpfn frame) (Bytes.make 64 '\x41');
      let ghcb = K.ghcb sys.Veil_core.Boot.kernel in
      ghcb.Sevsnp.Ghcb.request <-
        Sevsnp.Ghcb.Req_create_vcpu { vmsa_gpfn = frame; target_vmpl = T.Vmpl0 };
      P.vmgexit sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
      if ghcb.Sevsnp.Ghcb.response = 0 then Breached "hypervisor launched a forged VMPL-0 VMSA"
      else Blocked_error "hardware refused the frame: no RMP VMSA attribute")

let atk_idcb_trusted =
  mk "overwrite-trusted-idcb"
    "compromised OS overwrites trusted-domain communication memory in Dom_SEC (Table 1)"
    (fun () ->
      let sys = fresh () in
      os_write_gpa sys (T.gpa_of_gpfn (sys.Veil_core.Boot.layout.Veil_core.Layout.svc_region.Veil_core.Layout.lo + 1)))

let atk_malicious_pointer =
  mk "malicious-request-pointer"
    "compromised OS passes a pointer into VeilMon memory inside a service request (Table 1)"
    (fun () ->
      let sys = fresh () in
      let evil_dest = T.gpa_of_gpfn sys.Veil_core.Boot.layout.Veil_core.Layout.mon_heap.Veil_core.Layout.lo in
      match
        Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu (Veil_core.Idcb.R_log_fetch { dest_gpa = evil_dest; max = 4096 })
      with
      | Veil_core.Idcb.Resp_error e -> Blocked_sanitizer e
      | _ -> Breached "VeilMon wrote to its own memory on the OS's behalf")

let atk_pvalidate_protected =
  mk "pvalidate-protected-frame"
    "compromised OS asks the delegate to unvalidate a VeilMon frame (§5.3 check)"
    (fun () ->
      let sys = fresh () in
      match
        Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
          (Veil_core.Idcb.R_pvalidate { gpfn = sys.Veil_core.Boot.layout.Veil_core.Layout.mon_image.Veil_core.Layout.lo; to_private = false })
      with
      | Veil_core.Idcb.Resp_error e -> Blocked_sanitizer e
      | _ -> Breached "delegated PVALIDATE touched a trusted region")

let atk_ap_start_tampered_vmsa =
  mk "ap-start-tampered-vmsa"
    "malicious hypervisor tampers with an AP's VMSA replicas during SMP bring-up (§5, Veil-SMP)"
    (fun () ->
      let sys = fresh () in
      (* The OS requests the AP start through the monitor (§5):
         VeilMon hot-plugs the VCPU and creates/validates its
         per-domain replicas and IDCB.  A refusal (possible under
         chaos) still means no tampered AP ran. *)
      match (K.hooks sys.Veil_core.Boot.kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
      | Error e -> Blocked_error ("AP bring-up refused: " ^ e)
      | Ok () -> (
          (* Before the AP executes guest code, the hypervisor tries
             to overwrite each replica's saved state through host
             memory; SNP keeps every VMSA in a private frame. *)
          let tampered =
            List.filter_map
              (fun vmpl ->
                match Hypervisor.Hv.try_tamper_vmsa sys.Veil_core.Boot.hv ~vcpu_id:1 ~vmpl with
                | Ok () -> Some (Format.asprintf "%a" T.pp_vmpl vmpl)
                | Error _ -> None)
              [ T.Vmpl0; T.Vmpl1; T.Vmpl2; T.Vmpl3 ]
          in
          match tampered with
          | d :: _ -> Breached ("host overwrote the AP's " ^ d ^ " VMSA replica")
          | [] ->
              (* Nor can a forged frame be substituted as the AP's
                 instance: without the RMP VMSA attribute the hardware
                 rejects it at VMRUN registration. *)
              let frame = K.alloc_frame sys.Veil_core.Boot.kernel in
              P.write sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu (T.gpa_of_gpfn frame)
                (Bytes.make 64 '\x41');
              let ghcb = K.ghcb sys.Veil_core.Boot.kernel in
              ghcb.Sevsnp.Ghcb.request <-
                Sevsnp.Ghcb.Req_create_vcpu { vmsa_gpfn = frame; target_vmpl = T.Vmpl3 };
              P.vmgexit sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
              if ghcb.Sevsnp.Ghcb.response = 0 then
                Breached "hypervisor swapped a forged VMSA into the AP"
              else
                Blocked_error
                  "AP replicas unwritable from the host; forged AP VMSA refused (no RMP VMSA attribute)"))

let framework_attacks () =
  [
    atk_boot_image;
    atk_read_mon;
    atk_write_sec;
    atk_rmpadjust_lift;
    atk_rmpadjust_priv;
    atk_write_vmsa;
    atk_write_protected_pt;
    atk_spawn_vcpu_rmpadjust;
    atk_spawn_vcpu_hypercall;
    atk_ap_start_tampered_vmsa;
    atk_idcb_trusted;
    atk_malicious_pointer;
    atk_pvalidate_protected;
  ]

(* --- Table 2: enclave attacks --- *)

let atk_wrong_binary =
  mk "enclave-wrong-binary"
    "OS loads a trojaned binary into the enclave; remote attestation must catch it (Table 2)"
    (fun () ->
      let sys = fresh () in
      let proc = K.spawn sys.Veil_core.Boot.kernel in
      let good_binary = Bytes.of_string (String.make 5000 'G') in
      let evil_binary = Bytes.of_string (String.make 5000 'X') in
      match Enclave_sdk.Runtime.create sys ~binary:evil_binary proc with
      | Error e -> Blocked_error e
      | Ok rt ->
          let expected =
            Veil_core.Encsvc.measure_expected ~binary:good_binary ~npages_heap:16 ~npages_stack:4
              ~base_va:Guest_kernel.Process.enclave_base
          in
          if Bytes.equal (Enclave_sdk.Runtime.measurement rt) expected then
            Breached "tampered binary produced the expected measurement"
          else Blocked_crypto "enclave measurement mismatch: user withholds secrets")

let atk_enclave_read =
  mk "enclave-read-from-os" "compromised OS reads enclave memory (Table 2)" (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      match Veil_core.Encsvc.resident_frame (Enclave_sdk.Runtime.enclave rt) Guest_kernel.Process.enclave_base with
      | Some frame -> os_read_gpa sys (T.gpa_of_gpfn frame)
      | None -> Breached "enclave page unexpectedly absent")

let atk_enclave_write =
  mk "enclave-write-from-os" "compromised OS writes enclave memory (Table 2)" (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      match Veil_core.Encsvc.resident_frame (Enclave_sdk.Runtime.enclave rt) Guest_kernel.Process.enclave_base with
      | Some frame -> os_write_gpa sys (T.gpa_of_gpfn frame)
      | None -> Breached "enclave page unexpectedly absent")

let atk_enclave_alias =
  mk "enclave-aliased-layout"
    "OS submits an enclave layout with two virtual pages on one frame (Table 2, layout)"
    (fun () ->
      let sys = fresh () in
      let frame = K.alloc_frame sys.Veil_core.Boot.kernel in
      let mk_page i =
        {
          Guest_kernel.Enclave_desc.page_va = Guest_kernel.Process.enclave_base + (i * T.page_size);
          page_gpfn = frame (* same frame twice! *);
          page_kind = Guest_kernel.Enclave_desc.Code;
        }
      in
      let ghcb_frame = K.alloc_frame sys.Veil_core.Boot.kernel in
      (match K.share_page_with_host sys.Veil_core.Boot.kernel ghcb_frame with Ok () -> () | Error e -> failwith e);
      let desc =
        {
          Guest_kernel.Enclave_desc.enclave_id = 999;
          owner_pid = 1;
          base_va = Guest_kernel.Process.enclave_base;
          entry_va = Guest_kernel.Process.enclave_base;
          pages = [ mk_page 0; mk_page 1 ];
          ghcb_gpfn = ghcb_frame;
          ghcb_va = 0;
          shared = [];
          finalized = false;
          measurement = None;
        }
      in
      match Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu (Veil_core.Idcb.R_enclave_finalize desc) with
      | Veil_core.Idcb.Resp_error e -> Blocked_sanitizer e
      | _ -> Breached "aliased enclave layout accepted")

let atk_enclave_steal_frame =
  mk "enclave-disjointness"
    "OS builds a second enclave over the first enclave's physical pages (Table 2)"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      let victim_frame =
        match
          Veil_core.Encsvc.resident_frame (Enclave_sdk.Runtime.enclave rt) Guest_kernel.Process.enclave_base
        with
        | Some f -> f
        | None -> failwith "no victim frame"
      in
      let ghcb_frame = K.alloc_frame sys.Veil_core.Boot.kernel in
      (match K.share_page_with_host sys.Veil_core.Boot.kernel ghcb_frame with Ok () -> () | Error e -> failwith e);
      let desc =
        {
          Guest_kernel.Enclave_desc.enclave_id = 998;
          owner_pid = 1;
          base_va = Guest_kernel.Process.enclave_base;
          entry_va = Guest_kernel.Process.enclave_base;
          pages =
            [
              {
                Guest_kernel.Enclave_desc.page_va = Guest_kernel.Process.enclave_base;
                page_gpfn = victim_frame;
                page_kind = Guest_kernel.Enclave_desc.Code;
              };
            ];
          ghcb_gpfn = ghcb_frame;
          ghcb_va = 0;
          shared = [];
          finalized = false;
          measurement = None;
        }
      in
      match Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu (Veil_core.Idcb.R_enclave_finalize desc) with
      | Veil_core.Idcb.Resp_error e -> Blocked_sanitizer e
      | _ -> Breached "second enclave mapped the first enclave's frames")

let atk_enclave_vmsa_os =
  mk "enclave-vmsa-from-os" "compromised OS rewrites the enclave's saved rip in its VMSA (Table 2)"
    (fun () ->
      let sys = fresh () in
      let _rt = make_enclave sys in
      let vmsa = Veil_core.Monitor.vmsa_of sys.Veil_core.Boot.mon ~vcpu_id:0 ~dom:Veil_core.Privdom.Enc in
      os_write_gpa sys (T.gpa_of_gpfn vmsa.Sevsnp.Vmsa.backing_gpfn))

let atk_enclave_vmsa_hv =
  mk "enclave-vmsa-from-hypervisor"
    "hypervisor tries to overwrite the enclave VMSA through host memory (Table 2)"
    (fun () ->
      let sys = fresh () in
      let _rt = make_enclave sys in
      match Hypervisor.Hv.try_tamper_vmsa sys.Veil_core.Boot.hv ~vcpu_id:0 ~vmpl:T.Vmpl2 with
      | Ok () -> Breached "host wrote a private VMSA frame"
      | Error e -> Blocked_error e)

let atk_bad_ghcb =
  mk "enclave-bad-ghcb-mapping"
    "OS schedules the enclave with a wrong GHCB mapping; the switch must crash the CVM (§6.2)"
    (fun () ->
      let sys = fresh () in
      let _rt = make_enclave sys in
      (* point the GHCB MSR at a private frame and attempt the switch *)
      let vmsa = Sevsnp.Vcpu.current_vmsa sys.Veil_core.Boot.vcpu in
      vmsa.Sevsnp.Vmsa.ghcb_gpa <- T.gpa_of_gpfn (K.alloc_frame sys.Veil_core.Boot.kernel);
      P.vmgexit sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
      Breached "domain switch proceeded with a bogus GHCB")

let atk_refuse_relay =
  mk "hypervisor-refuse-interrupt-relay"
    "hypervisor forces interrupt handling inside Dom_ENC instead of relaying (Table 2)"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      let kernel = sys.Veil_core.Boot.kernel in
      Hypervisor.Hv.set_refuse_interrupt_relay sys.Veil_core.Boot.hv true;
      let j0 = Guest_kernel.Kernel.jiffies kernel in
      Enclave_sdk.Runtime.run rt (fun _ ->
          Hypervisor.Hv.inject_interrupt sys.Veil_core.Boot.hv sys.Veil_core.Boot.vcpu);
      (* the ISR never running is a (hypervisor-caused) denial of
         service, not a breach — e.g. a chaos plan dropped the relay
         before the refusal was even seen *)
      if Guest_kernel.Kernel.jiffies kernel = j0 then
        Blocked_error "interrupt never delivered at Dom_ENC (relay refused or dropped)"
      else Breached "kernel handler executed inside Dom_ENC")

let atk_cross_enclave =
  mk "malicious-enclave-cross-read"
    "a malicious enclave dereferences another enclave's address (Table 2)"
    (fun () ->
      let sys = fresh () in
      let victim = make_enclave sys in
      ignore victim;
      let attacker_proc = K.spawn sys.Veil_core.Boot.kernel in
      match
        Enclave_sdk.Runtime.create sys ~binary:(Bytes.of_string (String.make 4096 'A')) attacker_proc
      with
      | Error e -> failwith e
      | Ok attacker -> (
          (* the victim's pages are not in the attacker's protected
             tables; unprivileged code cannot remap them *)
          try
            Enclave_sdk.Runtime.run attacker (fun rt ->
                ignore
                  (Enclave_sdk.Runtime.read_data rt
                     ~va:(Guest_kernel.Process.enclave_base + (64 * T.page_size))
                     ~len:16));
            Breached "attacker enclave read outside its mapping"
          with P.Guest_page_fault _ -> Blocked_error "#PF: address not mapped in protected tables"))

let atk_enclave_exec_os =
  mk "enclave-execute-os-code" "an enclave jumps into kernel code at Dom_ENC (Table 2)" (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      Enclave_sdk.Runtime.run rt (fun _ ->
          P.check_exec sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu
            (T.gpa_of_gpfn sys.Veil_core.Boot.layout.Veil_core.Layout.kernel_text.Veil_core.Layout.lo));
      Breached "kernel text executed from Dom_ENC")

let atk_paging_replay =
  mk "enclave-paging-replay"
    "OS replays a stale evicted page at restore time; freshness counter must reject (§6.2)"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      let enclave = Enclave_sdk.Runtime.enclave rt in
      let id = Veil_core.Encsvc.enclave_id enclave in
      let va = Enclave_sdk.Runtime.heap_base rt in
      Enclave_sdk.Runtime.run rt (fun rt ->
          Enclave_sdk.Runtime.write_data rt ~va (Bytes.of_string "version 1"));
      (* evict v1 and squirrel away its ciphertext *)
      let frame = Option.get (Veil_core.Encsvc.resident_frame enclave va) in
      (match
         Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           (Veil_core.Idcb.R_enclave_evict { enclave_id = id; va })
       with
      | Veil_core.Idcb.Resp_ok -> ()
      | _ -> failwith "evict failed");
      let stale =
        P.read sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu (T.gpa_of_gpfn frame)
          T.page_size
      in
      (* restore v1, update to v2, evict again *)
      (match
         Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           (Veil_core.Idcb.R_enclave_restore { enclave_id = id; va; gpfn = frame })
       with
      | Veil_core.Idcb.Resp_ok -> ()
      | _ -> failwith "restore failed");
      Enclave_sdk.Runtime.run rt (fun rt ->
          Enclave_sdk.Runtime.write_data rt ~va (Bytes.of_string "version 2"));
      (match
         Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           (Veil_core.Idcb.R_enclave_evict { enclave_id = id; va })
       with
      | Veil_core.Idcb.Resp_ok -> ()
      | _ -> failwith "second evict failed");
      (* replay the stale v1 ciphertext *)
      P.write sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu (T.gpa_of_gpfn frame) stale;
      match
        Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
          (Veil_core.Idcb.R_enclave_restore { enclave_id = id; va; gpfn = frame })
      with
      | Veil_core.Idcb.Resp_error e -> Blocked_error e
      | Veil_core.Idcb.Resp_ok -> Breached "stale enclave page accepted (rollback!)"
      | _ -> Breached "unexpected response")

let atk_enclave_ghcb_escalate =
  mk "enclave-ghcb-escalation"
    "a malicious enclave requests a switch to Dom_MON through its own GHCB (policy check)"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      try
        Enclave_sdk.Runtime.run rt (fun _ ->
            let vcpu = sys.Veil_core.Boot.vcpu in
            match P.ghcb_of_vcpu sys.Veil_core.Boot.platform vcpu with
            | Some g ->
                g.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_domain_switch { target_vmpl = T.Vmpl0 };
                P.vmgexit sys.Veil_core.Boot.platform vcpu
            | None -> failwith "no ghcb");
        Breached "enclave switched to Dom_MON"
      with T.Cvm_halted reason -> Blocked_error ("CVM halted: " ^ reason))

let enclave_attacks () =
  [
    atk_wrong_binary;
    atk_paging_replay;
    atk_enclave_ghcb_escalate;
    atk_enclave_read;
    atk_enclave_write;
    atk_enclave_alias;
    atk_enclave_steal_frame;
    atk_enclave_vmsa_os;
    atk_enclave_vmsa_hv;
    atk_bad_ghcb;
    atk_refuse_relay;
    atk_cross_enclave;
    atk_enclave_exec_os;
  ]

(* --- §8.3 validation --- *)

let atk_validation_pt =
  mk "validation-pt-overwrite"
    "§8.3 attack 1: map VeilMon page tables into the OS address space and modify them"
    (fun () ->
      let sys = fresh () in
      let rt = make_enclave sys in
      let pt_frame = Veil_core.Encsvc.pt_root (Enclave_sdk.Runtime.enclave rt) in
      (* the OS maps the frame into a process and writes through its
         own (unprotected) tables — the RMP stops the final store *)
      let proc = K.spawn sys.Veil_core.Boot.kernel in
      let io =
        {
          Sevsnp.Pagetable.read_u64 = P.read_u64 sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
          write_u64 = P.write_u64 sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
          alloc_frame = (fun () -> K.alloc_frame sys.Veil_core.Boot.kernel);
          invalidate = (fun () -> P.tlb_shootdown sys.Veil_core.Boot.platform);
        }
      in
      let va = 0x7000_0000 in
      Sevsnp.Pagetable.map io ~root:proc.Guest_kernel.Process.pt_root va
        { Sevsnp.Pagetable.pte_gpfn = pt_frame; pte_flags = Sevsnp.Pagetable.kernel_rw };
      P.write_via_pt sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~root:proc.Guest_kernel.Process.pt_root va
        (Bytes.make 8 '\xff');
      Breached "VeilMon page tables modified from the OS")

let atk_validation_module =
  mk "validation-module-text-overwrite"
    "§8.3 attack 2: disable OS W^X bits and overwrite a VeilS-KCI-protected module's text"
    (fun () ->
      let sys = fresh () in
      let kernel = sys.Veil_core.Boot.kernel in
      let img =
        Guest_kernel.Kmodule.build (K.rng kernel) ~name:"victim" ~text_size:4096 ~data_size:512
          ~symbols:[ "ksym_1" ]
      in
      K.vendor_sign_module kernel img;
      match K.load_module kernel img with
      | Error e -> failwith ("module load failed: " ^ e)
      | Ok loaded ->
          let text_frame = List.hd loaded.Guest_kernel.Kmodule.text_gpfns in
          (* attacker sets the writable bit in its own page tables —
             ineffective against the RMP *)
          let proc = K.spawn kernel in
          let io =
            {
              Sevsnp.Pagetable.read_u64 = P.read_u64 sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
              write_u64 = P.write_u64 sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
              alloc_frame = (fun () -> K.alloc_frame kernel);
              invalidate = (fun () -> P.tlb_shootdown sys.Veil_core.Boot.platform);
            }
          in
          let va = 0x7100_0000 in
          Sevsnp.Pagetable.map io ~root:proc.Guest_kernel.Process.pt_root va
            { Sevsnp.Pagetable.pte_gpfn = text_frame; pte_flags = Sevsnp.Pagetable.kernel_rw };
          P.write_via_pt sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~root:proc.Guest_kernel.Process.pt_root va
            (Bytes.of_string "\xcc\xcc\xcc\xcc");
          Breached "module text overwritten despite VeilS-KCI")

let atk_stale_tlb =
  mk "validation-stale-tlb"
    "warm a translation in the VCPU TLB, have VeilMon revoke the frame's Dom_UNT \
     permissions, then replay the access hoping the cached translation survives"
    (fun () ->
      let sys = fresh () in
      let platform = sys.Veil_core.Boot.platform in
      let vcpu = sys.Veil_core.Boot.vcpu in
      let kernel = sys.Veil_core.Boot.kernel in
      (* the OS maps one of its own frames and reads it — legitimate,
         and it loads the translation + RMP snapshot into the TLB *)
      let frame = K.alloc_frame kernel in
      let proc = K.spawn kernel in
      let io =
        {
          Sevsnp.Pagetable.read_u64 = P.read_u64 platform vcpu;
          write_u64 = P.write_u64 platform vcpu;
          alloc_frame = (fun () -> K.alloc_frame kernel);
          invalidate = (fun () -> P.tlb_shootdown platform);
        }
      in
      let va = 0x7200_0000 in
      Sevsnp.Pagetable.map io ~root:proc.Guest_kernel.Process.pt_root va
        { Sevsnp.Pagetable.pte_gpfn = frame; pte_flags = Sevsnp.Pagetable.kernel_rw };
      ignore (P.read_via_pt platform vcpu ~root:proc.Guest_kernel.Process.pt_root va 8);
      (* VeilMon pulls the frame out from under the OS *)
      Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Mon;
      (match
         Veil_core.Monitor.mon_rmpadjust sys.Veil_core.Boot.mon vcpu ~gpfn:frame
           ~target:Veil_core.Privdom.Unt ~perms:Sevsnp.Perm.none
       with
      | Ok () -> ()
      | Error e -> failwith ("attack setup: revoke failed: " ^ e));
      Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Unt;
      (* replay: generation bump + instance-switch flush mean the warm
         entry must not be honoured *)
      ignore (P.read_via_pt platform vcpu ~root:proc.Guest_kernel.Process.pt_root va 8);
      Breached "stale TLB entry let the OS read a revoked frame")

let atk_pulse_tamper =
  mk "hypervisor-pulse-telemetry-tamper"
    "untrusted hypervisor drops, edits and reorders attested Veil-Pulse telemetry before it \
     reaches the verifier; the per-interval hash chain must flag every manipulation (ISSUE 8)"
    (fun () ->
      let sys = fresh () in
      let platform = sys.Veil_core.Boot.platform in
      let pu = platform.P.pulse in
      let vcpu = sys.Veil_core.Boot.vcpu in
      let kernel = sys.Veil_core.Boot.kernel in
      let proc = K.spawn kernel in
      (* audited opens: every op appends to VeilS-LOG through VeilMon,
         so the world-exit path (where the sampler ticks) runs hot *)
      Guest_kernel.Audit.set_rules (K.audit kernel) [ Guest_kernel.Sysno.Open ];
      Obs.Pulse.arm pu ~interval:200_000 ~now:(Sevsnp.Vcpu.rdtsc vcpu);
      for i = 1 to 200 do
        match
          K.invoke kernel proc Guest_kernel.Sysno.Open
            [ Guest_kernel.Ktypes.Str (Printf.sprintf "/tmp/pulse-%d" i);
              Guest_kernel.Ktypes.Int 0x42; Guest_kernel.Ktypes.Int 0o644 ]
        with
        | Guest_kernel.Ktypes.RInt fd ->
            ignore (K.invoke kernel proc Guest_kernel.Sysno.Close [ Guest_kernel.Ktypes.Int fd ])
        | r -> failwith (Format.asprintf "attack setup: open: %a" Guest_kernel.Ktypes.pp_ret r)
      done;
      Obs.Pulse.flush pu ~now:(Sevsnp.Vcpu.rdtsc vcpu);
      Obs.Pulse.disarm pu;
      let export = Obs.Pulse.export pu in
      (match Obs.Pulse.verify_export pu export with
      | Ok n when n >= 3 -> ()
      | Ok n -> failwith (Printf.sprintf "attack setup: only %d interval(s) captured" n)
      | Error (_, e) -> failwith ("attack setup: clean export rejected: " ^ e));
      let hdr, body =
        match String.split_on_char '\n' export with
        | h :: rest -> (h, rest)
        | [] -> failwith "attack setup: empty export"
      in
      let rejoin body = String.concat "\n" (hdr :: body) in
      let accepted tampered =
        match Obs.Pulse.verify_export pu tampered with Ok _ -> true | Error _ -> false
      in
      (* drop: suppress a middle interval *)
      let dropped = rejoin (List.filteri (fun k _ -> k <> List.length body / 2) body) in
      (* edit: inflate the middle interval's payload in place *)
      let edited =
        rejoin
          (List.mapi
             (fun k l ->
               if k = List.length body / 2 then
                 l ^ ",1:999" (* forge an extra delta slot *)
               else l)
             body)
      in
      (* reorder: swap the first two intervals *)
      let reordered =
        match body with a :: b :: rest -> rejoin (b :: a :: rest) | _ -> rejoin body
      in
      if accepted dropped then Breached "verifier accepted telemetry with a dropped interval"
      else if accepted edited then Breached "verifier accepted an edited interval"
      else if accepted reordered then Breached "verifier accepted reordered intervals"
      else
        Blocked_crypto
          "interval hash chain flagged the dropped, edited and reordered telemetry")

let validation_attacks () =
  [ atk_validation_pt; atk_validation_module; atk_stale_tlb; atk_pulse_tamper ]

(* Fleet scope (ISSUE 10): the Table-1 attacker — a fully compromised
   guest kernel — rides inside one tenant of a multi-guest host.  The
   oracle is strict byte-identity: co-tenants of the hostile guest must
   report the *same* histograms, data digests and schedules as in a
   benign run of the identical fleet, not merely "close" numbers. *)
let atk_fleet_cross_tenant =
  mk "fleet-compromised-guest-cross-tenant"
    "one guest of a 3-guest fleet runs a compromised kernel firing malicious request pointers \
     and a direct VeilMon read; every probe must be blocked and no co-tenant's histograms, \
     data or schedule may move by a single byte"
    (fun () ->
      let cfg =
        {
          Fleet.default with
          guests = 3;
          vcpus = 2;
          requests = 72;
          seed = 1033;
          lb = Fleet.Round_robin;
          (* Arm explicit per-guest fault plans: they are derived from the
             per-guest seed, so benign and hostile runs see identical fault
             streams and the byte-identity oracle holds even when the chaos
             driver has installed an ambient (stateful, shared) plan. *)
          chaos = true;
        }
      in
      let benign = Fleet.run cfg in
      let hostile = Fleet.run { cfg with hostile = Some 0 } in
      let victim i = (benign.Fleet.r_guests.(i), hostile.Fleet.r_guests.(i)) in
      let attacker = hostile.Fleet.r_guests.(0) in
      let drift = ref [] in
      for i = 1 to cfg.guests - 1 do
        let b, h = victim i in
        if b.Fleet.gr_hist_digest <> h.Fleet.gr_hist_digest then
          drift := Printf.sprintf "guest %d histograms moved" i :: !drift;
        if b.Fleet.gr_data_digest <> h.Fleet.gr_data_digest then
          drift := Printf.sprintf "guest %d data moved" i :: !drift;
        if b.Fleet.gr_journal <> h.Fleet.gr_journal then
          drift := Printf.sprintf "guest %d schedule moved" i :: !drift;
        if b.Fleet.gr_log_lines <> h.Fleet.gr_log_lines then
          drift := Printf.sprintf "guest %d protected log moved" i :: !drift;
        if not h.Fleet.gr_slog_ok then
          drift := Printf.sprintf "guest %d log chain broken" i :: !drift
      done;
      if !drift <> [] then
        Breached ("cross-tenant interference: " ^ String.concat "; " !drift)
      else if
        (* one sanitizer probe per served request, plus the final
           direct #NPF read *)
        attacker.Fleet.gr_blocked <> attacker.Fleet.gr_requests + 1
      then
        Breached
          (Printf.sprintf "hostile guest: only %d of %d probes blocked"
             attacker.Fleet.gr_blocked
             (attacker.Fleet.gr_requests + 1))
      else
        Blocked_sanitizer
          (Printf.sprintf
             "all %d malicious pointers rejected, VeilMon read faulted, %d co-tenants \
              byte-identical to the benign run"
             attacker.Fleet.gr_requests (cfg.guests - 1)))

let fleet_attacks () = [ atk_fleet_cross_tenant ]

let all () =
  framework_attacks () @ enclave_attacks () @ validation_attacks () @ fleet_attacks ()
