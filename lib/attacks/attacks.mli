(** Attack harness (§8).

    Implements every attack of Table 1 (against the framework), Table 2
    (against enclaves) and the two §8.3 validation experiments, each
    launched from the component the paper's threat model grants the
    attacker: a fully compromised OS kernel (arbitrary reads/writes/
    instructions at Dom_UNT), the untrusted hypervisor, or a malicious
    enclave.  Every attack returns an {!outcome} describing how the
    platform stopped it — or [Breached] if it didn't (a test failure). *)

type outcome =
  | Blocked_npf of Sevsnp.Types.npf_info  (** CVM halted with #NPF *)
  | Blocked_error of string  (** architectural error code / refusal *)
  | Blocked_sanitizer of string  (** VeilMon rejected the request *)
  | Blocked_crypto of string  (** attestation / signature / MAC failure *)
  | Breached of string  (** the attack succeeded — protection failed *)

val outcome_to_string : outcome -> string
val is_blocked : outcome -> bool

type t
(** An attack bound to a freshly booted Veil system. *)

val name : t -> string
val description : t -> string
val run : t -> outcome
(** Boots its own guest; safe to run each attack independently. *)

val framework_attacks : unit -> t list
(** Table 1: boot-time image substitution, trusted-domain read/write,
    RMPADJUST lifting, register state overwrite, page-table overwrite,
    VCPU spawning at trusted domains, IDCB overwrite, malicious OS
    request pointers. *)

val enclave_attacks : unit -> t list
(** Table 2: wrong binary, memory read/write from the OS, physical
    layout modification, VMSA tampering (OS + hypervisor), incorrect
    GHCB mapping, refused interrupt relay, cross-enclave access,
    supervisor execution from Dom_ENC. *)

val validation_attacks : unit -> t list
(** §8.3: overwrite VeilMon-protected page tables; overwrite a loaded
    module's text after disabling the OS's own W^X bits; drop/edit/
    reorder attested Veil-Pulse telemetry in transit (the hash chain
    must pinpoint the manipulation). *)

val fleet_attacks : unit -> t list
(** Fleet scope: a compromised guest kernel inside one tenant of a
    multi-guest host fires malicious request pointers and a direct
    VeilMon read while serving traffic.  Every probe must be blocked,
    and the co-tenants' reports must be byte-identical to a benign run
    of the same fleet. *)

val all : unit -> t list
