(** Cooperative in-guest scheduler.

    Guest "threads of execution" (process bodies) run as OCaml-5
    effect-based coroutines: they [yield] at syscall boundaries or
    [block_until] a condition (data on a socket, a pending
    connection), and the scheduler round-robins runnable work — so a
    server and its load generator execute as genuinely interleaved
    processes instead of hand-written callback turns.

    With [nvcpus > 1] (Veil-SMP) each coroutine lives on a per-VCPU
    runqueue and an external driver steps one VCPU at a time with
    {!step_vcpu}; a VCPU whose queue has nothing runnable steals the
    first runnable task from another queue (deterministic scan order,
    so schedules replay exactly).

    The scheduler is kernel policy, not hardware: it consumes no
    simulated cycles itself beyond the charges the caller supplies via
    the [create] callbacks. *)

type t

type wait_obs = {
  wo_tracer : Obs.Trace.t;
  wo_now : unit -> int;  (** the stepping VCPU's cycle counter *)
  wo_vcpu : unit -> int;  (** the stepping VCPU's id *)
  wo_vmpl : int;  (** VMPL stamped on wait spans (the scheduling kernel's) *)
}
(** Veil-Scope wait-span observability: while the tracer is enabled,
    every suspension is stamped and, at resume, emitted as a
    {!Obs.Trace.Wait} span — [Runqueue] for a runnable task that sat
    behind others (or was parked by a steal), [Blocked_poll] for a
    [block_until] sleep.  Observation only: no cycles are charged, and
    with the tracer disabled each hook is a single flag test. *)

val create :
  ?nvcpus:int -> ?on_context_switch:(unit -> unit) -> ?on_blocked_poll:(unit -> unit) ->
  ?wait_obs:wait_obs -> unit -> t
(** [nvcpus] (default 1) sets the number of runqueues.
    [on_context_switch] is invoked at every switch between coroutines
    (charge scheduling costs there).  [on_blocked_poll] is invoked
    every time a blocked coroutine's predicate is polled and comes
    back false — charge the poll cost there; the pre-SMP scheduler
    re-polled for free, which let blocked-heavy schedules spin without
    accruing cycles.  [wait_obs] arms wait-span emission. *)

val spawn : ?vcpu:int -> t -> name:string -> (unit -> unit) -> unit
(** Register a coroutine; it starts on the next {!run}/{!step_vcpu}.
    [vcpu] pins its home runqueue (default: round-robin over
    queues). *)

exception Deadlock of string list
(** Raised by {!run} when every live coroutine is blocked (the list
    names them). *)

val run : t -> unit
(** Round-robin over every task (ignoring runqueue homes) until every
    coroutine has finished — the single-VCPU path. *)

val step_vcpu : t -> int -> bool
(** [step_vcpu t vid] steps at most one runnable task from VCPU
    [vid]'s queue; if the queue has nothing runnable, steals the first
    runnable task from another queue (scanning vid+1, vid+2, ... mod
    nvcpus).  Returns [false] when no task anywhere could run.  The
    SMP driver loop lives above the kernel (see [Veil_core.Smp]). *)

val queue_live : t -> int -> bool
(** Does VCPU [vid]'s queue hold any unfinished task? *)

val nvcpus : t -> int

(* Called from inside coroutines: *)

val yield : unit -> unit
(** Give up the processor voluntarily. *)

val block_until : (unit -> bool) -> unit
(** Suspend until the predicate holds (re-checked each round; each
    false re-check fires [on_blocked_poll]). *)

val live : t -> int
val context_switches : t -> int

val live_names : t -> string list
(** Names of every unfinished coroutine (for deadlock reports). *)

val steals : t -> int
(** Cross-queue task migrations performed by {!step_vcpu}. *)
