(** The commodity guest kernel.

    A miniature monolithic kernel faithful to what Veil needs from
    Linux: processes with real page tables in guest memory, a syscall
    interface (the paper's 96-call surface), an in-memory FS and
    loopback network, kaudit, loadable modules, and — in a Veil CVM —
    delegation of every VMPL-0-only operation through {!Hooks.t}
    (§5.3).  The kernel runs at the VMPL its boot mode dictates:
    VMPL-0 natively, VMPL-3 (Dom_UNT) under Veil. *)

type t

val boot :
  platform:Sevsnp.Platform.t ->
  vcpu:Sevsnp.Vcpu.t ->
  free_frames:int * int ->
  text_frames:int * int ->
  data_frames:int * int ->
  unit ->
  t
(** Bring up the kernel on [vcpu] (whose current instance defines the
    kernel's VMPL).  [free_frames] is the [lo, hi) frame range the
    kernel may allocate from; [text_frames]/[data_frames] hold the
    kernel image.  Call {!set_hooks} (Veil mode) and then
    {!finish_boot} before use. *)

val finish_boot : t -> unit
(** Late boot: PVALIDATE guest memory (native mode only — under Veil
    the monitor has already validated and granted access) and set up
    the kernel GHCB. *)

val platform : t -> Sevsnp.Platform.t
val vcpu : t -> Sevsnp.Vcpu.t

(** Veil-SMP: retarget the kernel at the VCPU the interleaver picked;
    every subsequent charge, causal id and monitor call is attributed
    to it.  The VCPU must already be running a Dom_UNT instance (AP
    bring-up through the monitor arranges that). *)
val set_vcpu : t -> Sevsnp.Vcpu.t -> unit
val kernel_vmpl : t -> Sevsnp.Types.vmpl
val fs : t -> Fs.t
val audit : t -> Audit.t
val rng : t -> Veil_crypto.Rng.t

val set_hooks : t -> Hooks.t -> unit
(** Install the Veil hooks; also routes kaudit's emit through
    VeilS-LOG (§6.3). *)

val set_audit_protection : t -> bool -> unit
(** Toggle the VeilS-LOG capture, leaving plain in-memory kaudit
    running — the baseline of experiment E6. *)

val set_ring_flush : t -> (unit -> unit) option -> unit
(** Veil-Ring: install (or remove) the syscall-tail flush hook.  When
    set, it runs after every syscall's dispatch so deferred monitor
    requests batched during the syscall are flushed once the current
    VCPU's submission ring crosses its watermark.  [None] (the
    default) keeps the single-call path byte-identical. *)

val hooks : t -> Hooks.t

val text_range : t -> int * int
val data_range : t -> int * int
val symbol_table : t -> (string * int) list
(** Exported kernel symbols (name, address) for module relocation. *)

val ghcb : t -> Sevsnp.Ghcb.t
(** The kernel's own GHCB (per-VCPU in a full system; one here). *)

(* Memory management *)

val alloc_frame : t -> Sevsnp.Types.gpfn
(** Allocate a guest frame; raises [Failure] when exhausted. *)

val free_frame : t -> Sevsnp.Types.gpfn -> unit
val frames_free : t -> int

val share_page_with_host : t -> Sevsnp.Types.gpfn -> (unit, string) result
(** Page-state change to shared (bounce buffers, GHCBs): PVALIDATE is
    executed directly at VMPL-0, or delegated via [h_pvalidate]. *)

val accept_page_from_host : t -> Sevsnp.Types.gpfn -> (unit, string) result

(* Processes *)

val spawn : t -> Process.t
(** Create a process with a fresh page table (pid sequence from 1). *)

val proc : t -> int -> Process.t option
val init_process : t -> Process.t

val map_user_pages : t -> Process.t -> va:Sevsnp.Types.va -> npages:int -> prot:Ktypes.prot -> unit
(** Allocate frames and install user mappings in the process tables. *)

val unmap_user_pages : t -> Process.t -> va:Sevsnp.Types.va -> npages:int -> unit

val write_user : t -> Process.t -> va:Sevsnp.Types.va -> bytes -> unit
(** Copy into user memory through the process page tables (checked). *)

val read_user : t -> Process.t -> va:Sevsnp.Types.va -> len:int -> bytes

(* System calls *)

val invoke : t -> Process.t -> Sysno.t -> Ktypes.arg list -> Ktypes.ret
(** The syscall gate: charges entry cost, runs kaudit (execute-ahead
    via the protect hook), dispatches.  Unimplemented calls return
    [ENOSYS]. *)

val syscalls_invoked : t -> int

val invoke_blocking : t -> Process.t -> Sysno.t -> Ktypes.arg list -> Ktypes.ret
(** Like {!invoke}, but under a {!Sched} coroutine: [EAGAIN] from
    accept/recv yields to other runnable processes and retries, so
    servers and clients interleave like real blocking processes.
    Gives up (returns the [EAGAIN]) after a bounded number of
    reschedules to keep misuse debuggable. *)

(* Interrupts & module loading *)

val handle_interrupt : t -> Sevsnp.Vcpu.t -> unit
(** Timer/device ISR; registered with the hypervisor by the boot
    orchestrator. *)

val jiffies : t -> int

val load_module : t -> Kmodule.image -> (Kmodule.loaded, string) result
(** Native path: verify signature in-kernel, allocate, copy, relocate
    against {!symbol_table}, W^X via page flags.  Veil path (hooks
    installed): delegate to VeilS-KCI. *)

val unload_module : t -> string -> (unit, string) result
val find_module : t -> string -> Kmodule.loaded option
val vendor_public_key : t -> Veil_crypto.Bignum.t
val vendor_sign_module : t -> Kmodule.image -> unit
(** Sign with the trusted vendor key (build-system stand-in). *)

(* Enclave support (the §7 kernel module, reachable via ioctl) *)

val open_veil_device : t -> Process.t -> int
(** Returns an fd for /dev/veil. *)

val enclave_create :
  t ->
  Process.t ->
  binary:bytes ->
  heap_pages:int ->
  stack_pages:int ->
  (Enclave_desc.t, Ktypes.errno) result
(** Lay out the enclave region (code/data/stack/heap + user-mapped
    GHCB), then call [h_enclave_finalize]. *)

val enclave_destroy : t -> Process.t -> (unit, Ktypes.errno) result
