type _ Effect.t += Yield : unit Effect.t | Block : (unit -> bool) -> unit Effect.t

type status =
  | Runnable of (unit, unit) Effect.Deep.continuation
  | Blocked of (unit -> bool) * (unit, unit) Effect.Deep.continuation
  | Fresh of (unit -> unit)

type task = {
  name : string;
  mutable status : status option; (* None = finished *)
  mutable home : int;
  mutable parked_at : int;  (* cycle stamp when suspended; -1 = not stamped *)
  mutable parked_blocked : bool;  (* Blocked (vs merely runnable-in-queue) *)
}

(* Wait-span observability (Veil-Scope): when armed *and* the tracer is
   enabled, the scheduler stamps each suspension with the stepping
   VCPU's cycle clock and, at resume, emits the parked interval as a
   [Trace.Wait] span — [Runqueue] for a runnable task that sat behind
   others, [Blocked_poll] for a [block_until] sleep.  Pure observation:
   no cycles are charged, and with the tracer off every path below is a
   single flag test (the bench alloc-check pins this). *)
type wait_obs = {
  wo_tracer : Obs.Trace.t;
  wo_now : unit -> int;  (* the stepping VCPU's cycle counter *)
  wo_vcpu : unit -> int;  (* the stepping VCPU's id *)
  wo_vmpl : int;  (* VMPL to stamp (the scheduling kernel's) *)
}

type t = {
  mutable tasks : task list;  (* every task in spawn order (legacy [run] path) *)
  queues : task list array;  (* per-VCPU runqueues, spawn order within a queue *)
  on_context_switch : unit -> unit;
  on_blocked_poll : unit -> unit;
  wait_obs : wait_obs option;
  mutable switches : int;
  mutable steals : int;
  mutable spawned : int;
}

exception Deadlock of string list

let create ?(nvcpus = 1) ?(on_context_switch = fun () -> ()) ?(on_blocked_poll = fun () -> ())
    ?wait_obs () =
  if nvcpus < 1 then invalid_arg "Sched.create: nvcpus must be >= 1";
  {
    tasks = [];
    queues = Array.make nvcpus [];
    on_context_switch;
    on_blocked_poll;
    wait_obs;
    switches = 0;
    steals = 0;
    spawned = 0;
  }

let nvcpus t = Array.length t.queues

let spawn ?vcpu t ~name body =
  let home =
    match vcpu with
    | Some v ->
        if v < 0 || v >= nvcpus t then invalid_arg "Sched.spawn: vcpu out of range";
        v
    | None -> t.spawned mod nvcpus t
  in
  let task = { name; status = Some (Fresh body); home; parked_at = -1; parked_blocked = false } in
  (match t.wait_obs with
  | Some wo when Obs.Trace.enabled wo.wo_tracer -> task.parked_at <- wo.wo_now ()
  | _ -> ());
  t.spawned <- t.spawned + 1;
  t.tasks <- t.tasks @ [ task ];
  t.queues.(home) <- t.queues.(home) @ [ task ]

let yield () = Effect.perform Yield

let block_until pred = if not (pred ()) then Effect.perform (Block pred)

let live t = List.length (List.filter (fun task -> task.status <> None) t.tasks)

let context_switches t = t.switches
let steals t = t.steals

(* Stamp a suspension with the stepping VCPU's clock (wait spans are
   emitted at the matching [unpark]). *)
let park t task ~blocked =
  match t.wait_obs with
  | Some wo when Obs.Trace.enabled wo.wo_tracer ->
      task.parked_at <- wo.wo_now ();
      task.parked_blocked <- blocked
  | _ -> ()

(* Close the parked interval as a Wait span.  A task stolen onto a
   VCPU whose clock lags its parking stamp yields a non-positive
   extent; such cross-clock slivers are dropped rather than clamped
   into fake waiting. *)
let unpark t task =
  if task.parked_at >= 0 then begin
    (match t.wait_obs with
    | Some wo when Obs.Trace.enabled wo.wo_tracer ->
        let dur = wo.wo_now () - task.parked_at in
        if dur > 0 then
          Obs.Trace.complete wo.wo_tracer ~bucket:"sched" ~vcpu:(wo.wo_vcpu ()) ~vmpl:wo.wo_vmpl
            ~ts:task.parked_at ~dur
            (if task.parked_blocked then Obs.Trace.Wait Obs.Trace.Blocked_poll
             else Obs.Trace.Wait Obs.Trace.Runqueue)
    | _ -> ());
    task.parked_at <- -1;
    task.parked_blocked <- false
  end

(* Run one step of a task; its effects suspend it back into [status]. *)
let step t task =
  let handler =
    {
      Effect.Deep.retc = (fun () -> task.status <- None);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  task.status <- Some (Runnable k);
                  park t task ~blocked:false)
          | Block pred ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  task.status <- Some (Blocked (pred, k));
                  park t task ~blocked:true)
          | _ -> None);
    }
  in
  match task.status with
  | None -> ()
  | Some (Fresh body) ->
      t.switches <- t.switches + 1;
      t.on_context_switch ();
      unpark t task;
      Effect.Deep.match_with body () handler
  | Some (Runnable k) ->
      (* the fiber keeps its original deep handler: resume bare — a
         fresh wrapper's retc would clobber the status the original
         handler records at the next suspension *)
      t.switches <- t.switches + 1;
      t.on_context_switch ();
      task.status <- None (* replaced by the handler if it suspends *);
      unpark t task;
      Effect.Deep.continue k ()
  | Some (Blocked (pred, k)) ->
      if pred () then begin
        t.switches <- t.switches + 1;
        t.on_context_switch ();
        task.status <- None;
        unpark t task;
        Effect.Deep.continue k ()
      end

(* A blocked coroutine's predicate is real work each time the
   scheduler considers it: a poll that comes back false costs
   [on_blocked_poll] (the pre-SMP scheduler re-polled for free, which
   let blocked-heavy schedules spin without accruing any cycles). *)
let runnable t task =
  match task.status with
  | Some (Fresh _) | Some (Runnable _) -> true
  | Some (Blocked (pred, _)) ->
      let ready = pred () in
      if not ready then t.on_blocked_poll ();
      ready
  | None -> false

let run t =
  let progress = ref true in
  while live t > 0 do
    if not !progress then
      raise
        (Deadlock
           (List.filter_map (fun task -> if task.status <> None then Some task.name else None) t.tasks));
    progress := false;
    List.iter
      (fun task ->
        if runnable t task then begin
          progress := true;
          step t task
        end)
      t.tasks
  done

(* --- per-VCPU stepping (Veil-SMP) --- *)

let find_runnable t q = List.find_opt (fun task -> runnable t task) q

let queue_live t vid = List.exists (fun task -> task.status <> None) t.queues.(vid)

let live_names t =
  List.filter_map (fun task -> if task.status <> None then Some task.name else None) t.tasks

let step_vcpu t vid =
  let n = nvcpus t in
  if vid < 0 || vid >= n then invalid_arg "Sched.step_vcpu: vcpu out of range";
  (* Rotate: the stepped task re-enters at the tail (if still live), so
     tasks sharing a queue round-robin instead of the head task
     monopolizing its VCPU; finished tasks fall out of the queue. *)
  let run_on task =
    t.queues.(vid) <- List.filter (fun x -> x != task) t.queues.(vid);
    step t task;
    if task.status <> None then t.queues.(vid) <- t.queues.(vid) @ [ task ]
  in
  match find_runnable t t.queues.(vid) with
  | Some task ->
      run_on task;
      true
  | None ->
      (* Work stealing: scan the other queues in deterministic order
         (vid+1, vid+2, ... mod n) and migrate the first runnable task
         onto this VCPU's queue before stepping it. *)
      let rec scan k =
        if k >= n then false
        else begin
          let q = (vid + k) mod n in
          match find_runnable t t.queues.(q) with
          | Some task ->
              t.queues.(q) <- List.filter (fun x -> x != task) t.queues.(q);
              task.home <- vid;
              t.steals <- t.steals + 1;
              run_on task;
              true
          | None -> scan (k + 1)
        end
      in
      scan 1
