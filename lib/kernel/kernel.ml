module P = Sevsnp.Platform
module T = Sevsnp.Types
module C = Sevsnp.Cycles
module Pt = Sevsnp.Pagetable

type t = {
  platform : P.t;
  mutable vcpu : Sevsnp.Vcpu.t;
  fs : Fs.t;
  net : Net.t;
  audit : Audit.t;
  rng : Veil_crypto.Rng.t;
  free_lo : int;
  free_hi : int;
  mutable next_free : int;
  mutable freed : int list;
  text : int * int;
  data : int * int;
  symbols : (string * int) list;
  mutable hooks : Hooks.t;
  mutable hooks_installed : bool;
  mutable ring_flush : (unit -> unit) option;
      (* Veil-Ring: called at the syscall tail to flush the current
         VCPU's submission ring once it crosses its watermark; None
         (the default) keeps the unbatched path byte-identical *)
  procs : (int, Process.t) Hashtbl.t;
  mutable next_pid : int;
  mutable ghcb : Sevsnp.Ghcb.t option;
  mutable init : Process.t option;
  mutable jiffies : int;
  mutable syscalls : int;
  vendor : Veil_crypto.Schnorr.keypair;
  modules : (string, Kmodule.loaded) Hashtbl.t;
  mutable next_enclave_id : int;
  c_syscalls : Obs.Metrics.counter;
  h_syscall_cycles : Obs.Metrics.histogram;
}

let platform t = t.platform
let vcpu t = t.vcpu

(* Veil-SMP: the kernel executes on whichever VCPU the interleaver
   picked; every subsequent charge/causal-id/monitor call is
   attributed to it.  The new VCPU must already be running a Dom_UNT
   instance (AP bring-up through the monitor does that). *)
let set_vcpu t v = t.vcpu <- v

let kernel_vmpl t = Sevsnp.Vcpu.vmpl t.vcpu
let fs t = t.fs
let audit t = t.audit
let rng t = t.rng
let set_hooks t h =
  t.hooks <- h;
  t.hooks_installed <- true;
  (* kaudit's audit_log_end hook now feeds VeilS-LOG (§6.3). *)
  Audit.set_protect_hook t.audit (Some h.Hooks.h_audit)

let set_audit_protection t enabled =
  Audit.set_protect_hook t.audit
    (if enabled && t.hooks_installed then Some t.hooks.Hooks.h_audit else None)

let set_ring_flush t f = t.ring_flush <- f

let hooks t = t.hooks
let text_range t = t.text
let data_range t = t.data
let symbol_table t = t.symbols
let jiffies t = t.jiffies
let syscalls_invoked t = t.syscalls
let vendor_public_key t = t.vendor.Veil_crypto.Schnorr.public

let vendor_sign_module t img = Kmodule.sign t.rng ~vendor_secret:t.vendor.Veil_crypto.Schnorr.secret img

let charge t bucket n = Sevsnp.Vcpu.charge t.vcpu bucket n

(* --- frame allocator --- *)

let alloc_frame t =
  match t.freed with
  | f :: rest ->
      t.freed <- rest;
      Sevsnp.Phys_mem.zero_page t.platform.P.mem f;
      f
  | [] ->
      if t.next_free >= t.free_hi then failwith "kernel: out of physical frames";
      let f = t.next_free in
      t.next_free <- f + 1;
      f

let free_frame t f = t.freed <- f :: t.freed

let frames_free t = (t.free_hi - t.next_free) + List.length t.freed

(* --- page-state changes (§5.3 delegation) --- *)

let notify_host_page_state t gpfn to_shared =
  match t.ghcb with
  | None -> () (* early boot: host learns lazily *)
  | Some g ->
      g.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_page_state_change { gpfn; to_shared };
      P.vmgexit t.platform t.vcpu

let pvalidate_op t gpfn to_private =
  if T.equal_vmpl (kernel_vmpl t) T.Vmpl0 then
    Result.map_error (fun e -> e) (P.pvalidate t.platform t.vcpu ~bucket:C.Kernel ~gpfn ~to_private ())
  else t.hooks.Hooks.h_pvalidate ~gpfn ~to_private

let share_page_with_host t gpfn =
  match pvalidate_op t gpfn false with
  | Error _ as e -> e
  | Ok () ->
      notify_host_page_state t gpfn true;
      Ok ()

let accept_page_from_host t gpfn =
  match pvalidate_op t gpfn true with
  | Error _ as e -> e
  | Ok () ->
      notify_host_page_state t gpfn false;
      Ok ()

let ghcb t = match t.ghcb with Some g -> g | None -> failwith "kernel GHCB not set up"

(* --- page tables --- *)

let pt_io t : Pt.io =
  {
    Pt.read_u64 = P.read_u64 t.platform t.vcpu;
    write_u64 = P.write_u64 t.platform t.vcpu;
    alloc_frame =
      (fun () ->
        charge t C.Kernel 400;
        alloc_frame t);
    invalidate = (fun () -> P.tlb_shootdown t.platform);
  }

let flags_of_prot (p : Ktypes.prot) : Pt.flags =
  { Pt.present = true; writable = p.Ktypes.pw; user = true; nx = not p.Ktypes.px }

let map_user_pages t (proc : Process.t) ~va ~npages ~prot =
  let io = pt_io t in
  for i = 0 to npages - 1 do
    let frame = alloc_frame t in
    charge t C.Kernel 500;
    Pt.map io ~root:proc.Process.pt_root (va + (i * T.page_size)) { Pt.pte_gpfn = frame; pte_flags = flags_of_prot prot }
  done

let unmap_user_pages t (proc : Process.t) ~va ~npages =
  let io = pt_io t in
  for i = 0 to npages - 1 do
    let page_va = va + (i * T.page_size) in
    (match P.translate t.platform ~root:proc.Process.pt_root page_va with
    | Some pte -> free_frame t pte.Pt.pte_gpfn
    | None -> ());
    charge t C.Kernel 300;
    ignore (Pt.unmap io ~root:proc.Process.pt_root page_va)
  done;
  (* Distributed TLB shootdown: local flush on the initiating VCPU
     (500 cycles, the pre-SMP flat constant) plus one IPI send/ack per
     remote VCPU and the handler cost on each remote (Veil-SMP). *)
  P.tlb_shootdown_distributed t.platform ~initiator:t.vcpu

let write_user t (proc : Process.t) ~va data =
  charge t C.Copy (C.copy_cost (Bytes.length data));
  P.write_via_pt t.platform t.vcpu ~root:proc.Process.pt_root va data

let read_user t (proc : Process.t) ~va ~len =
  charge t C.Copy (C.copy_cost len);
  P.read_via_pt t.platform t.vcpu ~root:proc.Process.pt_root va len

(* --- boot --- *)

let boot ~platform ~vcpu ~free_frames:(free_lo, free_hi) ~text_frames ~data_frames () =
  let rng = Veil_crypto.Rng.split platform.P.rng in
  let t =
    {
      platform;
      vcpu;
      fs = Fs.create (Veil_crypto.Rng.split rng);
      net = Net.create ();
      audit = Audit.create ();
      rng;
      free_lo;
      free_hi;
      next_free = free_lo;
      freed = [];
      text = text_frames;
      data = data_frames;
      symbols = [];
      hooks = Hooks.none;
      hooks_installed = false;
      ring_flush = None;
      procs = Hashtbl.create 16;
      next_pid = 1;
      ghcb = None;
      init = None;
      jiffies = 0;
      syscalls = 0;
      vendor = Veil_crypto.Schnorr.keygen (Veil_crypto.Rng.split rng);
      modules = Hashtbl.create 8;
      next_enclave_id = 1;
      c_syscalls = Obs.Metrics.counter platform.P.metrics "kernel.syscalls";
      h_syscall_cycles = Obs.Metrics.histogram platform.P.metrics "kernel.syscall_cycles";
    }
  in
  let text_lo, _ = text_frames in
  let symbols =
    List.init 64 (fun i -> (Printf.sprintf "ksym_%d" i, T.gpa_of_gpfn text_lo + (i * 64)))
  in
  { t with symbols }

let finish_boot t =
  (* Native kernels validate guest memory themselves at VMPL-0; under
     Veil the monitor has already validated and granted access. *)
  (if T.equal_vmpl (kernel_vmpl t) T.Vmpl0 then begin
     let validate_range (lo, hi) =
       for gpfn = lo to hi - 1 do
         match P.pvalidate t.platform t.vcpu ~bucket:C.Kernel ~gpfn ~to_private:true () with
         | Ok () -> ()
         | Error e -> failwith e
       done
     in
     validate_range t.text;
     validate_range t.data;
     validate_range (t.free_lo, t.free_hi)
   end);
  (* Kernel GHCB: under Veil the monitor pre-provisioned one for the
     Dom_UNT instance; a native kernel sets its own up. *)
  (match P.ghcb_of_vcpu t.platform t.vcpu with
  | Some g -> t.ghcb <- Some g
  | None ->
      let ghcb_frame = alloc_frame t in
      (match share_page_with_host t ghcb_frame with
      | Ok () -> ()
      | Error e -> failwith ("kernel ghcb: " ^ e));
      (match P.set_ghcb t.platform t.vcpu (T.gpa_of_gpfn ghcb_frame) with
      | Ok () -> ()
      | Error e -> failwith ("kernel ghcb msr: " ^ e));
      t.ghcb <- Some (Option.get (P.ghcb_of_vcpu t.platform t.vcpu)))

let spawn t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let pt_root = alloc_frame t in
  charge t C.Kernel 4000;
  let p = Process.create ~pid ~ppid:(if pid = 1 then 0 else 1) ~pt_root in
  Hashtbl.replace t.procs pid p;
  if t.init = None then t.init <- Some p;
  p

let proc t pid = Hashtbl.find_opt t.procs pid

let init_process t = match t.init with Some p -> p | None -> failwith "kernel: no init process"

(* --- interrupts --- *)

let handle_interrupt t _vcpu =
  t.jiffies <- t.jiffies + 1;
  charge t C.Kernel 1800

(* --- module loading --- *)

let apply_relocations t (img : Kmodule.image) text_copy =
  List.iter
    (fun (off, sym) ->
      match List.assoc_opt sym t.symbols with
      | None -> failwith (Printf.sprintf "module %s: unknown symbol %s" img.Kmodule.name sym)
      | Some addr ->
          charge t C.Kernel 200;
          Bytes.set_int64_le text_copy off (Int64.of_int addr))
    img.Kmodule.relocs

let alloc_span t nbytes =
  let npages = max 1 ((nbytes + T.page_size - 1) / T.page_size) in
  List.init npages (fun _ -> alloc_frame t)

let write_span t frames data =
  List.iteri
    (fun i frame ->
      let off = i * T.page_size in
      let n = min T.page_size (Bytes.length data - off) in
      if n > 0 then begin
        charge t C.Copy (C.copy_cost n);
        P.write_sub t.platform t.vcpu (T.gpa_of_gpfn frame) data off n
      end)
    frames

let load_module_native t (img : Kmodule.image) =
  charge t C.Crypto (C.hash_cost (Kmodule.binary_size img));
  if not (Kmodule.verify ~vendor_public:(vendor_public_key t) img) then Error "module signature invalid"
  else begin
    let text_copy = Bytes.copy img.Kmodule.text in
    apply_relocations t img text_copy;
    let text_gpfns = alloc_span t (Bytes.length text_copy) in
    let data_gpfns = alloc_span t (Bytes.length img.Kmodule.data) in
    write_span t text_gpfns text_copy;
    write_span t data_gpfns img.Kmodule.data;
    (* W^X via page-table flags only (the protection VeilS-KCI
       hardens with RMPADJUST, since these bits are forgeable). *)
    charge t C.Kernel (300 * List.length text_gpfns);
    Ok
      {
        Kmodule.module_image = img;
        text_gpfns;
        data_gpfns;
        load_address = T.gpa_of_gpfn (List.hd text_gpfns);
        installed = true;
      }
  end

let load_module t img =
  charge t C.Kernel 700_000 (* allocation, sysfs/kobject setup, init call *);
  let result = if t.hooks_installed then t.hooks.Hooks.h_module_load img else load_module_native t img in
  (match result with
  | Ok loaded -> Hashtbl.replace t.modules img.Kmodule.name loaded
  | Error _ -> ());
  result

let unload_module t name =
  match Hashtbl.find_opt t.modules name with
  | None -> Error "module not loaded"
  | Some loaded ->
      charge t C.Kernel 1_280_000 (* synchronize_rcu + teardown dominate unload *);
      let release () =
        List.iter (free_frame t) loaded.Kmodule.text_gpfns;
        List.iter (free_frame t) loaded.Kmodule.data_gpfns;
        loaded.Kmodule.installed <- false;
        Hashtbl.remove t.modules name
      in
      if t.hooks_installed then (
        match t.hooks.Hooks.h_module_unload loaded with
        | Ok () ->
            release ();
            Ok ()
        | Error _ as e -> e)
      else begin
        release ();
        Ok ()
      end

let find_module t name = Hashtbl.find_opt t.modules name

(* --- enclave support (the ioctl kernel module of §7) --- *)

let open_veil_device _t proc = Process.alloc_fd proc (Fd.mk_veil_dev ())

let enclave_create t (proc : Process.t) ~binary ~heap_pages ~stack_pages =
  if proc.Process.enclave <> None then Error Ktypes.EEXIST
  else begin
    let id = t.next_enclave_id in
    t.next_enclave_id <- id + 1;
    let code_pages = max 1 ((Bytes.length binary + T.page_size - 1) / T.page_size) in
    let base = Process.enclave_base in
    let mk_page i kind =
      let gpfn = alloc_frame t in
      { Enclave_desc.page_va = base + (i * T.page_size); page_gpfn = gpfn; page_kind = kind }
    in
    let pages =
      List.init code_pages (fun i -> mk_page i Enclave_desc.Code)
      @ List.init heap_pages (fun i -> mk_page (code_pages + i) Enclave_desc.Heap)
      @ List.init stack_pages (fun i -> mk_page (code_pages + heap_pages + i) Enclave_desc.Stack)
    in
    (* Copy the self-contained binary into the code pages and map the
       whole region into the process tables (OS-side installation). *)
    List.iteri
      (fun i (pg : Enclave_desc.page) ->
        (if pg.Enclave_desc.page_kind = Enclave_desc.Code then begin
           let off = i * T.page_size in
           let n = min T.page_size (Bytes.length binary - off) in
           if n > 0 then begin
             charge t C.Copy (C.copy_cost n);
             P.write t.platform t.vcpu (T.gpa_of_gpfn pg.Enclave_desc.page_gpfn) (Bytes.sub binary off n)
           end
         end);
        let prot = Enclave_desc.prot_of_kind pg.Enclave_desc.page_kind in
        charge t C.Kernel 500;
        Pt.map (pt_io t) ~root:proc.Process.pt_root pg.Enclave_desc.page_va
          { Pt.pte_gpfn = pg.Enclave_desc.page_gpfn; pte_flags = flags_of_prot prot })
      pages;
    (* Per-thread user-mapped GHCB (§6.2). *)
    let ghcb_frame = alloc_frame t in
    match share_page_with_host t ghcb_frame with
    | Error _ -> Error Ktypes.ENOMEM
    | Ok () ->
        let ghcb_va = base + ((code_pages + heap_pages + stack_pages + 4) * T.page_size) in
        Pt.map (pt_io t) ~root:proc.Process.pt_root ghcb_va
          { Pt.pte_gpfn = ghcb_frame; pte_flags = flags_of_prot Ktypes.prot_rw };
        (* Untrusted in-process arena for redirected system calls. *)
        let shared_pages = 8 in
        let shared =
          List.init shared_pages (fun i ->
              let va = ghcb_va + ((1 + i) * T.page_size) in
              let frame = alloc_frame t in
              charge t C.Kernel 500;
              Pt.map (pt_io t) ~root:proc.Process.pt_root va
                { Pt.pte_gpfn = frame; pte_flags = flags_of_prot Ktypes.prot_rw };
              (va, frame))
        in
        let desc =
          {
            Enclave_desc.enclave_id = id;
            owner_pid = proc.Process.pid;
            base_va = base;
            entry_va = base;
            pages;
            ghcb_gpfn = ghcb_frame;
            ghcb_va;
            shared;
            finalized = false;
            measurement = None;
          }
        in
        (match t.hooks.Hooks.h_enclave_finalize desc with
        | Error _ -> Error Ktypes.EPERM
        | Ok measurement ->
            desc.Enclave_desc.finalized <- true;
            desc.Enclave_desc.measurement <- Some measurement;
            proc.Process.enclave <- Some desc;
            Ok desc)
  end

let enclave_destroy t (proc : Process.t) =
  match proc.Process.enclave with
  | None -> Error Ktypes.EINVAL
  | Some desc -> (
      match t.hooks.Hooks.h_enclave_destroy desc with
      | Error _ -> Error Ktypes.EPERM
      | Ok () ->
          List.iter
            (fun (pg : Enclave_desc.page) ->
              ignore (Pt.unmap (pt_io t) ~root:proc.Process.pt_root pg.Enclave_desc.page_va);
              free_frame t pg.Enclave_desc.page_gpfn)
            desc.Enclave_desc.pages;
          List.iter
            (fun (va, frame) ->
              ignore (Pt.unmap (pt_io t) ~root:proc.Process.pt_root va);
              free_frame t frame)
            desc.Enclave_desc.shared;
          ignore (Pt.unmap (pt_io t) ~root:proc.Process.pt_root desc.Enclave_desc.ghcb_va);
          proc.Process.enclave <- None;
          Ok ())

(* --- system calls --- *)

let open_flag_bits flags =
  let accmode = flags land 3 in
  let has bit = flags land bit <> 0 in
  ( (accmode = 0 || accmode = 2),
    (accmode = 1 || accmode = 2),
    has 0x40 (* O_CREAT *),
    has 0x200 (* O_TRUNC *),
    has 0x400 (* O_APPEND *),
    has 0x80 (* O_EXCL *) )

let abspath (proc : Process.t) path =
  if String.length path > 0 && path.[0] = '/' then path
  else if proc.Process.cwd = "/" then "/" ^ path
  else proc.Process.cwd ^ "/" ^ path

let lift : ('a, Ktypes.errno) result -> ('a -> Ktypes.ret) -> Ktypes.ret =
 fun r k -> match r with Ok v -> k v | Error e -> Ktypes.RErr e

let sys_open t proc path flags mode =
  charge t C.Kernel 2600 (* path walk, dentry/inode, fd install *);
  let path = abspath proc path in
  let readable, writable, creat, trunc, append, excl = open_flag_bits flags in
  let exists = Fs.exists t.fs path in
  if exists && creat && excl then Ktypes.RErr Ktypes.EEXIST
  else if (not exists) && not creat then Ktypes.RErr Ktypes.ENOENT
  else begin
    let create_result =
      if not exists then Fs.create_file t.fs path ~mode:(mode land lnot proc.Process.umask) else Ok ()
    in
    lift create_result (fun () ->
        let trunc_result = if trunc && Fs.kind_of t.fs path = Some Fs.Regular then Fs.truncate t.fs path 0 else Ok () in
        lift trunc_result (fun () ->
            match Fs.kind_of t.fs path with
            | Some Fs.Directory when writable -> Ktypes.RErr Ktypes.EISDIR
            | None -> Ktypes.RErr Ktypes.ENOENT
            | Some _ -> Ktypes.RInt (Process.alloc_fd proc (Fd.mk_file ~path ~readable ~writable ~append))))
  end

let file_size t path = match Fs.size_of t.fs path with Ok n -> n | Error _ -> 0

let sys_read t proc fd len =
  if len < 0 then Ktypes.RErr Ktypes.EINVAL
  else
  lift (Process.find_fd proc fd) (fun f ->
      match f.Fd.kind with
      | Fd.File fs_state ->
          if not fs_state.Fd.readable then Ktypes.RErr Ktypes.EBADF
          else
            lift (Fs.read_at t.fs fs_state.Fd.path ~pos:fs_state.Fd.pos ~len) (fun data ->
                fs_state.Fd.pos <- fs_state.Fd.pos + Bytes.length data;
                charge t C.Copy (C.copy_cost (Bytes.length data));
                Ktypes.RBuf data)
      | Fd.Sock ep ->
          lift (Net.recv t.net ep len) (fun data ->
              charge t C.Copy (C.copy_cost (Bytes.length data));
              Ktypes.RBuf data)
      | Fd.Pipe_r p ->
          let n = min len (Buffer.length p.Fd.pbuf) in
          if n = 0 then if p.Fd.writers > 0 then Ktypes.RErr Ktypes.EAGAIN else Ktypes.RBuf Bytes.empty
          else begin
            let all = Buffer.contents p.Fd.pbuf in
            let out = Bytes.of_string (String.sub all 0 n) in
            Buffer.clear p.Fd.pbuf;
            Buffer.add_string p.Fd.pbuf (String.sub all n (String.length all - n));
            charge t C.Copy (C.copy_cost n);
            Ktypes.RBuf out
          end
      | Fd.Pipe_w _ -> Ktypes.RErr Ktypes.EBADF
      | Fd.Veil_dev -> Ktypes.RErr Ktypes.EINVAL)

let sys_write t proc fd data =
  lift (Process.find_fd proc fd) (fun f ->
      match f.Fd.kind with
      | Fd.File fs_state ->
          if not fs_state.Fd.writable then Ktypes.RErr Ktypes.EBADF
          else begin
            let pos = if fs_state.Fd.append then file_size t fs_state.Fd.path else fs_state.Fd.pos in
            (* Console writes traverse the tty layer. *)
            if fs_state.Fd.path = "/dev/console" then charge t C.Kernel 2500;
            lift (Fs.write_at t.fs fs_state.Fd.path ~pos data) (fun n ->
                fs_state.Fd.pos <- pos + n;
                charge t C.Copy (C.copy_cost n);
                Ktypes.RInt n)
          end
      | Fd.Sock ep ->
          lift (Net.send t.net ep data) (fun n ->
              charge t C.Copy (C.copy_cost n);
              Ktypes.RInt n)
      | Fd.Pipe_w p ->
          if p.Fd.readers = 0 then Ktypes.RErr Ktypes.EPIPE
          else begin
            Buffer.add_bytes p.Fd.pbuf data;
            charge t C.Copy (C.copy_cost (Bytes.length data));
            Ktypes.RInt (Bytes.length data)
          end
      | Fd.Pipe_r _ -> Ktypes.RErr Ktypes.EBADF
      | Fd.Veil_dev -> Ktypes.RErr Ktypes.EINVAL)

let sys_lseek t proc fd off whence =
  lift (Process.find_fd proc fd) (fun f ->
      match f.Fd.kind with
      | Fd.File fs_state ->
          let base =
            match whence with
            | 0 -> 0
            | 1 -> fs_state.Fd.pos
            | 2 -> ( match Fs.size_of t.fs fs_state.Fd.path with Ok n -> n | Error _ -> 0)
            | _ -> -1
          in
          if base < 0 || base + off < 0 then Ktypes.RErr Ktypes.EINVAL
          else begin
            fs_state.Fd.pos <- base + off;
            Ktypes.RInt fs_state.Fd.pos
          end
      | _ -> Ktypes.RErr Ktypes.ESPIPE)

let prot_of_bits bits =
  { Ktypes.pr = bits land 1 <> 0; pw = bits land 2 <> 0; px = bits land 4 <> 0 }

let sys_mmap t proc ~len ~protbits ~fd ~off =
  if len <= 0 then Ktypes.RErr Ktypes.EINVAL
  else begin
    let npages = (len + T.page_size - 1) / T.page_size in
    let va = proc.Process.mmap_cursor in
    proc.Process.mmap_cursor <- va + ((npages + 1) * T.page_size);
    let prot = prot_of_bits protbits in
    charge t C.Kernel 2600;
    map_user_pages t proc ~va ~npages ~prot:{ prot with Ktypes.pw = true };
    (* Pre-populate file-backed mappings. *)
    (match if fd >= 0 then Process.find_fd proc fd else Error Ktypes.EBADF with
    | Ok { Fd.kind = Fd.File fs_state } -> (
        match Fs.read_at t.fs fs_state.Fd.path ~pos:off ~len with
        | Ok data when Bytes.length data > 0 -> write_user t proc ~va data
        | _ -> ())
    | _ -> ());
    (* Restore requested protections if tighter than rw. *)
    (if not prot.Ktypes.pw then
       let io = pt_io t in
       for i = 0 to npages - 1 do
         ignore (Pt.protect io ~root:proc.Process.pt_root (va + (i * T.page_size)) (flags_of_prot prot))
       done);
    Process.add_vma proc { Process.vma_start = va; vma_npages = npages; vma_prot = prot; vma_file = None };
    Ktypes.RInt va
  end

let enclave_range (proc : Process.t) va npages =
  match proc.Process.enclave with
  | None -> false
  | Some desc ->
      let lo = desc.Enclave_desc.base_va in
      let hi = lo + (Enclave_desc.npages desc * T.page_size) in
      va < hi && va + (npages * T.page_size) > lo

let sys_munmap t proc va len =
  let npages = (len + T.page_size - 1) / T.page_size in
  if enclave_range proc va npages then Ktypes.RErr Ktypes.EACCES
  else begin
    match Process.find_vma proc va with
    | None -> Ktypes.RErr Ktypes.EINVAL
    | Some vma ->
        charge t C.Kernel 1400;
        unmap_user_pages t proc ~va ~npages:(min npages vma.Process.vma_npages);
        ignore (Process.remove_vma proc vma.Process.vma_start);
        Ktypes.RInt 0
  end

let sys_mprotect t proc va len protbits =
  let npages = (len + T.page_size - 1) / T.page_size in
  let prot = prot_of_bits protbits in
  if enclave_range proc va npages then
    (* Enclave region permissions are owned by VeilS-ENC (§6.2). *)
    Ktypes.RErr Ktypes.EACCES
  else begin
    charge t C.Kernel 900;
    let io = pt_io t in
    let changed = ref 0 in
    for i = 0 to npages - 1 do
      if Pt.protect io ~root:proc.Process.pt_root (va + (i * T.page_size)) (flags_of_prot prot) then incr changed
    done;
    (match Process.find_vma proc va with Some vma -> vma.Process.vma_prot <- prot | None -> ());
    (* Keep the enclave's protected tables in sync (§6.2). *)
    if proc.Process.enclave <> None then t.hooks.Hooks.h_pt_sync ~pid:proc.Process.pid ~va ~npages ~prot;
    if !changed = 0 then Ktypes.RErr Ktypes.EINVAL else Ktypes.RInt 0
  end

let sys_brk t proc newbrk =
  if newbrk = 0 then Ktypes.RInt proc.Process.brk
  else if newbrk < proc.Process.brk_start then Ktypes.RErr Ktypes.EINVAL
  else begin
    let cur_pages = (proc.Process.brk - proc.Process.brk_start + T.page_size - 1) / T.page_size in
    let want_pages = (newbrk - proc.Process.brk_start + T.page_size - 1) / T.page_size in
    if want_pages > cur_pages then
      map_user_pages t proc
        ~va:(proc.Process.brk_start + (cur_pages * T.page_size))
        ~npages:(want_pages - cur_pages) ~prot:Ktypes.prot_rw
    else if want_pages < cur_pages then
      unmap_user_pages t proc
        ~va:(proc.Process.brk_start + (want_pages * T.page_size))
        ~npages:(cur_pages - want_pages);
    proc.Process.brk <- newbrk;
    Ktypes.RInt newbrk
  end

let sys_socket t proc =
  charge t C.Kernel 2600 (* sk_alloc, protocol setup *);
  Ktypes.RInt (Process.alloc_fd proc (Fd.mk_sock (Net.socket t.net)))

let with_sock proc fd k =
  lift (Process.find_fd proc fd) (fun f ->
      match f.Fd.kind with Fd.Sock ep -> k ep | _ -> Ktypes.RErr Ktypes.EBADF)

let sys_ioctl t proc fd cmd rest =
  lift (Process.find_fd proc fd) (fun f ->
      match (f.Fd.kind, cmd, rest) with
      | Fd.Veil_dev, 1, [ Ktypes.Buf binary; Ktypes.Int heap_pages; Ktypes.Int stack_pages ] ->
          lift (enclave_create t proc ~binary ~heap_pages ~stack_pages) (fun desc ->
              Ktypes.RInt desc.Enclave_desc.enclave_id)
      | Fd.Veil_dev, 2, [] -> lift (enclave_destroy t proc) (fun () -> Ktypes.RInt 0)
      | _ -> Ktypes.RErr Ktypes.EINVAL)

let dispatch t (proc : Process.t) (sys : Sysno.t) (args : Ktypes.arg list) : Ktypes.ret =
  let open Ktypes in
  match (sys, args) with
  | Sysno.Open, [ Str path; Int flags; Int mode ] -> sys_open t proc path flags mode
  | Sysno.Openat, [ Int _dirfd; Str path; Int flags; Int mode ] -> sys_open t proc path flags mode
  | Sysno.Creat, [ Str path; Int mode ] -> sys_open t proc path (0x40 lor 0x200 lor 1) mode
  | Sysno.Close, [ Int fd ] -> if Process.remove_fd proc fd then RInt 0 else RErr EBADF
  | Sysno.Read, [ Int fd; Int len ] -> sys_read t proc fd len
  | Sysno.Write, [ Int fd; Buf data ] -> sys_write t proc fd data
  | Sysno.Pread64, [ Int fd; Int len; Int pos ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st ->
              lift (Fs.read_at t.fs st.Fd.path ~pos ~len) (fun data ->
                  charge t C.Copy (C.copy_cost (Bytes.length data));
                  RBuf data)
          | _ -> RErr ESPIPE)
  | Sysno.Pwrite64, [ Int fd; Buf data; Int pos ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st ->
              lift (Fs.write_at t.fs st.Fd.path ~pos data) (fun n ->
                  charge t C.Copy (C.copy_cost n);
                  RInt n)
          | _ -> RErr ESPIPE)
  | Sysno.Readv, [ Int fd; Int len ] -> sys_read t proc fd len
  | Sysno.Writev, [ Int fd; Buf data ] -> sys_write t proc fd data
  | Sysno.Lseek, [ Int fd; Int off; Int whence ] -> sys_lseek t proc fd off whence
  | Sysno.Stat, [ Str path ] | Sysno.Lstat, [ Str path ] ->
      charge t C.Kernel 900;
      lift (Fs.stat t.fs (abspath proc path)) (fun s -> RStat s)
  | Sysno.Fstat, [ Int fd ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st -> lift (Fs.stat t.fs st.Fd.path) (fun s -> RStat s)
          | _ -> RStat { st_size = 0; st_is_dir = false; st_mode = 0o600; st_ino = 0 })
  | Sysno.Access, [ Str path ] -> if Fs.exists t.fs (abspath proc path) then RInt 0 else RErr ENOENT
  | Sysno.Mkdir, [ Str path; Int _mode ] | Sysno.Mkdirat, [ Int _; Str path; Int _mode ] ->
      lift (Fs.mkdir t.fs (abspath proc path)) (fun () -> RInt 0)
  | Sysno.Rmdir, [ Str path ] -> lift (Fs.rmdir t.fs (abspath proc path)) (fun () -> RInt 0)
  | Sysno.Unlink, [ Str path ] | Sysno.Unlinkat, [ Int _; Str path ] ->
      lift (Fs.unlink t.fs (abspath proc path)) (fun () -> RInt 0)
  | Sysno.Rename, [ Str a; Str b ] | Sysno.Renameat, [ Str a; Str b ] ->
      lift (Fs.rename t.fs (abspath proc a) (abspath proc b)) (fun () -> RInt 0)
  | Sysno.Link, [ Str a; Str b ] -> lift (Fs.link t.fs (abspath proc a) (abspath proc b)) (fun () -> RInt 0)
  | Sysno.Symlink, [ Str target; Str linkpath ] ->
      lift (Fs.symlink t.fs ~target ~linkpath:(abspath proc linkpath)) (fun () -> RInt 0)
  | Sysno.Readlink, [ Str path ] ->
      lift (Fs.readlink t.fs (abspath proc path)) (fun s -> RBuf (Bytes.of_string s))
  | Sysno.Truncate, [ Str path; Int len ] -> lift (Fs.truncate t.fs (abspath proc path) len) (fun () -> RInt 0)
  | Sysno.Ftruncate, [ Int fd; Int len ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st -> lift (Fs.truncate t.fs st.Fd.path len) (fun () -> RInt 0)
          | _ -> RErr EBADF)
  | Sysno.Chmod, [ Str path; Int mode ] -> lift (Fs.chmod t.fs (abspath proc path) mode) (fun () -> RInt 0)
  | Sysno.Fchmod, [ Int fd; Int mode ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st -> lift (Fs.chmod t.fs st.Fd.path mode) (fun () -> RInt 0)
          | _ -> RErr EBADF)
  | Sysno.Chown, [ Str path; Int _; Int _ ] ->
      if Fs.exists t.fs (abspath proc path) then RInt 0 else RErr ENOENT
  | Sysno.Getdents, [ Int fd ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st ->
              lift (Fs.readdir t.fs st.Fd.path) (fun names -> RBuf (Bytes.of_string (String.concat "\n" names)))
          | _ -> RErr ENOTDIR)
  | Sysno.Getcwd, [] -> RBuf (Bytes.of_string proc.Process.cwd)
  | Sysno.Chdir, [ Str path ] ->
      let p = abspath proc path in
      if Fs.kind_of t.fs p = Some Fs.Directory then begin
        proc.Process.cwd <- p;
        RInt 0
      end
      else RErr ENOENT
  | Sysno.Fsync, [ Int fd ] ->
      lift (Process.find_fd proc fd) (fun f ->
          match f.Fd.kind with
          | Fd.File st ->
              let size = file_size t st.Fd.path in
              charge t C.Io (C.io_cost (min size 65536));
              RInt 0
          | _ -> RErr EBADF)
  | Sysno.Mmap, [ Int _addr; Int len; Int protbits; Int _flags; Int fd; Int off ] ->
      sys_mmap t proc ~len ~protbits ~fd ~off
  | Sysno.Munmap, [ Int va; Int len ] -> sys_munmap t proc va len
  | Sysno.Mprotect, [ Int va; Int len; Int protbits ] -> sys_mprotect t proc va len protbits
  | Sysno.Brk, [ Int newbrk ] -> sys_brk t proc newbrk
  | Sysno.Socket, [ Int _dom; Int _ty; Int _proto ] -> sys_socket t proc
  | Sysno.Bind, [ Int fd; Int port ] ->
      with_sock proc fd (fun ep -> lift (Net.bind t.net ep ~port) (fun () -> RInt 0))
  | Sysno.Listen, [ Int fd; Int backlog ] ->
      with_sock proc fd (fun ep -> lift (Net.listen t.net ep ~backlog) (fun () -> RInt 0))
  | Sysno.Connect, [ Int fd; Int port ] ->
      charge t C.Kernel 2200;
      with_sock proc fd (fun ep -> lift (Net.connect t.net ep ~port) (fun () -> RInt 0))
  | Sysno.Accept, [ Int fd ] | Sysno.Accept4, [ Int fd ] ->
      charge t C.Kernel 1800;
      with_sock proc fd (fun ep ->
          lift (Net.accept t.net ep) (fun client -> RInt (Process.alloc_fd proc (Fd.mk_sock client))))
  | Sysno.Sendto, [ Int fd; Buf data ] | Sysno.Sendmsg, [ Int fd; Buf data ] ->
      with_sock proc fd (fun ep ->
          lift (Net.send t.net ep data) (fun n ->
              charge t C.Copy (C.copy_cost n);
              RInt n))
  | Sysno.Recvfrom, [ Int fd; Int len ] | Sysno.Recvmsg, [ Int fd; Int len ] ->
      with_sock proc fd (fun ep ->
          lift (Net.recv t.net ep len) (fun data ->
              charge t C.Copy (C.copy_cost (Bytes.length data));
              RBuf data))
  | Sysno.Shutdown, [ Int fd ] ->
      with_sock proc fd (fun ep ->
          Net.shutdown t.net ep;
          RInt 0)
  | Sysno.Getsockname, [ Int fd ] | Sysno.Getpeername, [ Int fd ] -> with_sock proc fd (fun _ -> RInt 0)
  | Sysno.Setsockopt, [ Int fd; Int _; Int _ ] | Sysno.Getsockopt, [ Int fd; Int _; Int _ ] ->
      with_sock proc fd (fun _ -> RInt 0)
  | Sysno.Socketpair, [] ->
      let a, b = Net.pair t.net in
      let fda = Process.alloc_fd proc (Fd.mk_sock a) in
      let fdb = Process.alloc_fd proc (Fd.mk_sock b) in
      RInt (fda lor (fdb lsl 16))
  | Sysno.Pipe, [] | Sysno.Pipe2, [] ->
      let r, w = Fd.mk_pipe () in
      let fdr = Process.alloc_fd proc r in
      let fdw = Process.alloc_fd proc w in
      RInt (fdr lor (fdw lsl 16))
  | Sysno.Dup, [ Int fd ] ->
      lift (Process.find_fd proc fd) (fun f -> RInt (Process.alloc_fd proc f))
  | Sysno.Dup2, [ Int fd; Int newfd ] | Sysno.Dup3, [ Int fd; Int newfd ] ->
      lift (Process.find_fd proc fd) (fun f ->
          Process.install_fd proc newfd f;
          RInt newfd)
  | Sysno.Fcntl, [ Int fd; Int _cmd ] -> lift (Process.find_fd proc fd) (fun _ -> RInt 0)
  | Sysno.Sendfile, [ Int outfd; Int infd; Int count ] -> (
      match sys_read t proc infd count with
      | RBuf data -> sys_write t proc outfd data
      | r -> r)
  | Sysno.Splice, [ Int infd; Int outfd; Int count ] -> (
      match sys_read t proc infd count with
      | RBuf data -> sys_write t proc outfd data
      | r -> r)
  | Sysno.Getpid, [] -> RInt proc.Process.pid
  | Sysno.Getppid, [] -> RInt proc.Process.ppid
  | Sysno.Getuid, [] | Sysno.Geteuid, [] -> RInt proc.Process.uid
  | Sysno.Getgid, [] | Sysno.Getegid, [] -> RInt 0
  | Sysno.Setuid, [ Int uid ] ->
      proc.Process.uid <- uid;
      proc.Process.euid <- uid;
      RInt 0
  | Sysno.Setgid, [ Int _ ] -> RInt 0
  | Sysno.Setreuid, [ Int _; Int euid ] ->
      proc.Process.euid <- euid;
      RInt 0
  | Sysno.Setresuid, [ Int _; Int euid; Int _ ] ->
      proc.Process.euid <- euid;
      RInt 0
  | Sysno.Umask, [ Int m ] ->
      let old = proc.Process.umask in
      proc.Process.umask <- m land 0o777;
      RInt old
  | Sysno.Uname, [] -> RBuf (Bytes.of_string "Linux veil-cvm 5.16.0-rc4-snp x86_64")
  | Sysno.Gettimeofday, [] | Sysno.Clock_gettime, [] ->
      RInt (Sevsnp.Vcpu.rdtsc t.vcpu * 5 / 12) (* ns at 2.4 GHz *)
  | Sysno.Nanosleep, [ Int ns ] ->
      if ns < 0 then RErr EINVAL
      else begin
        charge t C.Other (ns * 12 / 5);
        RInt 0
      end
  | Sysno.Sched_yield, [] -> RInt 0
  | Sysno.Getrandom, [ Int len ] ->
      if len < 0 then RErr EINVAL
      else begin
        charge t C.Kernel (200 + (len * 3));
        RBuf (Veil_crypto.Rng.bytes t.rng len)
      end
  | Sysno.Fork, [] | Sysno.Vfork, [] | Sysno.Clone, [] ->
      charge t C.Kernel 45_000;
      let child = spawn t in
      RInt child.Process.pid
  | Sysno.Execve, [ Str _path ] ->
      charge t C.Kernel 120_000;
      RInt 0
  | Sysno.Exit, [ Int code ] | Sysno.Exit_group, [ Int code ] ->
      proc.Process.exit_code <- Some code;
      RInt 0
  | Sysno.Wait4, [ Int _pid ] -> RErr ENOSYS
  | Sysno.Kill, [ Int _pid; Int _sig ] -> RInt 0
  | Sysno.Mknod, [ Str path; Int mode; Int _dev ] | Sysno.Mknodat, [ Int _; Str path; Int mode; Int _dev ]
    ->
      lift (Fs.create_file t.fs (abspath proc path) ~mode) (fun () -> RInt 0)
  | Sysno.Statfs, [ Str _ ] -> RInt 0
  | Sysno.Ioctl, Int fd :: Int cmd :: rest -> sys_ioctl t proc fd cmd rest
  | Sysno.Poll, _ | Sysno.Select, _ | Sysno.Futex, _ | Sysno.Rt_sigaction, _ | Sysno.Rt_sigprocmask, _
    ->
      RErr ENOSYS
  | _ -> RErr EINVAL

let audit_detail (proc : Process.t) args =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "uid=%d euid=%d" proc.Process.uid proc.Process.euid);
  List.iteri (fun i a -> Buffer.add_string buf (Format.asprintf " a%d=%a" i Ktypes.pp_arg a)) args;
  Buffer.contents buf

let invoke t proc sys args =
  t.syscalls <- t.syscalls + 1;
  Obs.Metrics.incr t.c_syscalls;
  let prof = t.platform.P.profiler in
  let prof_on = Obs.Profiler.enabled prof in
  let vcpu_id = t.vcpu.Sevsnp.Vcpu.id in
  (* Syscall entry is a request origin: mint a causal id if none is
     riding this VCPU (an enclave ocall arrives with one already). *)
  let minted = prof_on && Obs.Profiler.id prof ~vcpu:vcpu_id = 0 in
  if minted then Obs.Profiler.set_id prof ~vcpu:vcpu_id (Obs.Profiler.mint prof);
  let ts0 = Sevsnp.Vcpu.rdtsc t.vcpu in
  if prof_on then
    Obs.Profiler.push prof ~vcpu:vcpu_id ~vmpl:(T.vmpl_index (kernel_vmpl t)) ~ts:ts0 "syscall";
  charge t C.Kernel C.syscall_base;
  (* Execute-ahead auditing (§6.3): the record is built — and captured
     by the protect hook — *before* the event executes, so the log
     survives a compromise that happens at this very event. *)
  (if Audit.matches t.audit sys then begin
     let detail = audit_detail proc args in
     charge t C.Kernel C.kaudit_format;
     if prof_on then
       Obs.Profiler.leaf prof ~vcpu:vcpu_id ~vmpl:(T.vmpl_index (kernel_vmpl t))
         ~dur:C.kaudit_format "kaudit_format";
     ignore (Audit.emit t.audit ~cycles:(Sevsnp.Vcpu.rdtsc t.vcpu) ~sys ~pid:proc.Process.pid ~detail)
   end);
  let ret = dispatch t proc sys args in
  (* Veil-Ring flush point: deferred requests submitted during this
     syscall (audit records, pt_syncs) ride the ring until the
     watermark, then one batched monitor entry serves them all. *)
  (match t.ring_flush with None -> () | Some flush -> flush ());
  let dur = Sevsnp.Vcpu.rdtsc t.vcpu - ts0 in
  Obs.Metrics.observe t.h_syscall_cycles dur;
  if Obs.Trace.enabled t.platform.P.tracer then
    Obs.Trace.complete t.platform.P.tracer ~bucket:"kernel" ~arg:(Sysno.number sys)
      ~id:(Obs.Profiler.id prof ~vcpu:vcpu_id)
      ~vcpu:t.vcpu.Sevsnp.Vcpu.id ~vmpl:(T.vmpl_index (kernel_vmpl t)) ~ts:ts0 ~dur
      Obs.Trace.Syscall;
  if prof_on then begin
    Obs.Profiler.pop prof ~vcpu:vcpu_id ~ts:(Sevsnp.Vcpu.rdtsc t.vcpu);
    if minted then Obs.Profiler.set_id prof ~vcpu:vcpu_id 0
  end;
  ret


(* Blocking flavor for coroutine-scheduled processes (see Sched):
   EAGAIN yields to other runnable processes and retries. *)
let invoke_blocking t proc sys args =
  let rec go tries =
    match invoke t proc sys args with
    | Ktypes.RErr Ktypes.EAGAIN when tries > 0 ->
        Sched.yield ();
        go (tries - 1)
    | ret -> ret
  in
  go 100_000
