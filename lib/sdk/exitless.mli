(** Exitless system calls (§10, FlexSC-style).

    The paper's other future-work optimization besides batching: the
    enclave posts requests into a ring in the *shared arena* and a
    free kernel worker thread on another VCPU drains them — the
    enclave thread never takes a synchronous exit at all.

    Simulation shape: [submit] marshals into the ring from Dom_ENC
    (deep-copy cost, no switch); [drain_on] runs the kernel worker on
    a (hotplugged) VCPU, executing pending calls and writing results
    back; [poll]/[await] read completions from the ring. *)

type t

val create : Runtime.t -> slots:int -> (t, string) result
(** Carve a request ring out of the runtime's shared arena.  Fails if
    the enclave has no arena or [slots] exceeds its capacity. *)

type ticket

val submit : t -> Guest_kernel.Sysno.t -> Guest_kernel.Ktypes.arg list -> (ticket, string) result
(** Enclave-side, no exit.  [Error] when the ring is full (drain
    first) or the call is SDK-unsupported. *)

type prepared
(** A pre-validated submission (FlexSC registered entry / io_uring
    reusable SQE): spec lookup, sanitizer pass and the arena-crossing
    copy cost are paid once at {!prepare}, so each {!submit_prepared}
    is pure stores + integer math — zero allocation, which bench
    micro's alloc-check asserts. *)

val prepare :
  Guest_kernel.Sysno.t -> Guest_kernel.Ktypes.arg list -> (prepared, string) result

val submit_prepared : t -> prepared -> ticket
(** Raises [Failure] when the ring is full (drain the worker). *)

val cancel : t -> ticket -> unit
(** Withdraw a submitted-but-undrained request; a no-op once the
    worker picked it up.  Lets a benchmark exercise the submit path
    without paying the drain. *)

val poll : t -> ticket -> Guest_kernel.Ktypes.ret option
(** Enclave-side completion check; [None] while pending. *)

val drain_on : t -> Sevsnp.Vcpu.t -> int
(** Kernel worker: execute every pending request on [vcpu] (the
    syscall work is charged there, not to the enclave's VCPU);
    returns the number completed.  Must run while the enclave VCPU is
    inside — that is the whole point. *)

val await : t -> worker:Sevsnp.Vcpu.t -> ticket -> Guest_kernel.Ktypes.ret
(** Convenience: drain on the worker, then read the completion. *)

val pending : t -> int
val submitted_total : t -> int
