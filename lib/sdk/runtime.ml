module T = Sevsnp.Types
module C = Sevsnp.Cycles
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Ed = Guest_kernel.Enclave_desc

exception Enclave_killed of string

type stats = {
  mutable ocalls : int;
  mutable enclave_entries : int;
  mutable enclave_exits : int;
  mutable redirect_bytes : int;
  mutable redirect_cycles : int;
  mutable exit_cycles : int;
  mutable interrupts_while_inside : int;
}

type t = {
  sys : Veil_core.Boot.veil_system;
  proc : Guest_kernel.Process.t;
  enclave : Veil_core.Encsvc.enclave;
  desc : Ed.t;
  heap : Dlmalloc.t;
  veil_fd : int;
  arena_va : T.va;
  arena_bytes : int;
  arena_scratch : bytes;  (** preallocated bounce buffer — ocall arena crossings allocate nothing *)
  kernel_ghcb : T.gpa;
  stats : stats;
  mutable is_inside : bool;
  mutable last_tick : int;
  mutable killed : bool;
  mutable cur_vcpu : Sevsnp.Vcpu.t option;  (** VCPU the thread is pinned to *)
}

let tick_period = C.freq_hz / 250 (* 250 Hz guest timer *)

let system t = t.sys
let proc t = t.proc
let enclave t = t.enclave
let stats t = t.stats
let inside t = t.is_inside

let measurement t =
  match t.desc.Ed.measurement with Some m -> m | None -> failwith "enclave not measured"

let heap_base t =
  match List.find_opt (fun p -> p.Ed.page_kind = Ed.Heap) t.desc.Ed.pages with
  | Some p -> p.Ed.page_va
  | None -> failwith "enclave has no heap"

let enclave_range t =
  let lo = t.desc.Ed.base_va in
  (lo, lo + (Ed.npages t.desc * T.page_size))

let create sys ?(heap_pages = 16) ?(stack_pages = 4) ~binary proc =
  let kernel = sys.Veil_core.Boot.kernel in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let veil_fd = Kern.open_veil_device kernel proc in
  match
    Kern.invoke kernel proc S.Ioctl
      [ K.Int veil_fd; K.Int 1; K.Buf binary; K.Int heap_pages; K.Int stack_pages ]
  with
  | K.RErr e -> Error ("enclave creation failed: " ^ K.errno_to_string e)
  | K.RInt id -> (
      match (proc.Guest_kernel.Process.enclave, Veil_core.Encsvc.find sys.Veil_core.Boot.enc id) with
      | Some desc, Some enclave ->
          let heap_lo =
            match List.find_opt (fun p -> p.Ed.page_kind = Ed.Heap) desc.Ed.pages with
            | Some p -> p.Ed.page_va
            | None -> desc.Ed.base_va
          in
          let arena_va = match desc.Ed.shared with (va, _) :: _ -> va | [] -> 0 in
          Ok
            {
              sys;
              proc;
              enclave;
              desc;
              heap = Dlmalloc.create ~base:heap_lo ~size:(heap_pages * T.page_size);
              veil_fd;
              arena_va;
              arena_bytes = List.length desc.Ed.shared * T.page_size;
              arena_scratch = Bytes.create (List.length desc.Ed.shared * T.page_size);
              kernel_ghcb = (Sevsnp.Vcpu.current_vmsa vcpu).Sevsnp.Vmsa.ghcb_gpa;
              stats =
                {
                  ocalls = 0;
                  enclave_entries = 0;
                  enclave_exits = 0;
                  redirect_bytes = 0;
                  redirect_cycles = 0;
                  exit_cycles = 0;
                  interrupts_while_inside = 0;
                };
              is_inside = false;
              last_tick = Sevsnp.Vcpu.rdtsc vcpu;
              killed = false;
              cur_vcpu = None;
            }
      | _ -> Error "enclave descriptor missing after creation")
  | _ -> Error "unexpected ioctl return"

let destroy t =
  if t.is_inside then Error "cannot destroy from inside the enclave"
  else begin
    match
      Kern.invoke t.sys.Veil_core.Boot.kernel t.proc S.Ioctl [ K.Int t.veil_fd; K.Int 2 ]
    with
    | K.RInt _ -> Ok ()
    | K.RErr e -> Error (K.errno_to_string e)
    | _ -> Error "unexpected ioctl return"
  end

let vcpu t = match t.cur_vcpu with Some v -> v | None -> t.sys.Veil_core.Boot.vcpu

let switch_bucket t = Sevsnp.Cycles.read_bucket (vcpu t).Sevsnp.Vcpu.counter Sevsnp.Cycles.Switch

let enter t =
  let before = switch_bucket t in
  Veil_core.Encsvc.enter t.sys.Veil_core.Boot.enc (vcpu t) t.enclave;
  t.stats.exit_cycles <- t.stats.exit_cycles + (switch_bucket t - before);
  t.stats.enclave_entries <- t.stats.enclave_entries + 1;
  t.is_inside <- true

let leave t =
  let before = switch_bucket t in
  Veil_core.Encsvc.exit_enclave t.sys.Veil_core.Boot.enc (vcpu t) t.enclave
    ~restore_ghcb:t.kernel_ghcb;
  t.stats.exit_cycles <- t.stats.exit_cycles + (switch_bucket t - before);
  t.stats.enclave_exits <- t.stats.enclave_exits + 1;
  t.is_inside <- false

let profiler t = t.sys.Veil_core.Boot.platform.Sevsnp.Platform.profiler

let run t body =
  if t.killed then raise (Enclave_killed "enclave was killed");
  (* An ecall is a request origin: the causal id minted here rides the
     VCPU through every ocall, world switch, and audit append the body
     performs. *)
  let prof = profiler t in
  let vc = (vcpu t).Sevsnp.Vcpu.id in
  let minted = Obs.Profiler.enabled prof && Obs.Profiler.id prof ~vcpu:vc = 0 in
  if minted then Obs.Profiler.set_id prof ~vcpu:vc (Obs.Profiler.mint prof);
  let finish () = if minted then Obs.Profiler.set_id prof ~vcpu:vc 0 in
  enter t;
  match body t with
  | result ->
      leave t;
      finish ();
      result
  | exception e ->
      if t.is_inside then leave t;
      finish ();
      raise e

let maybe_tick t =
  let now = Sevsnp.Vcpu.rdtsc (vcpu t) in
  if now - t.last_tick >= tick_period then begin
    t.last_tick <- now;
    let was_inside = t.is_inside in
    let before = switch_bucket t in
    Hypervisor.Hv.inject_interrupt t.sys.Veil_core.Boot.hv (vcpu t);
    if was_inside then begin
      (* Interrupt relayed out of Dom_ENC and back (§6.2). *)
      t.stats.interrupts_while_inside <- t.stats.interrupts_while_inside + 1;
      t.stats.enclave_exits <- t.stats.enclave_exits + 1;
      t.stats.exit_cycles <- t.stats.exit_cycles + (switch_bucket t - before)
    end
  end

let compute t n =
  Sevsnp.Vcpu.charge (vcpu t) C.Compute n;
  maybe_tick t

let charge_redirect t cost =
  Sevsnp.Vcpu.charge (vcpu t) C.Copy cost;
  t.stats.redirect_cycles <- t.stats.redirect_cycles + cost

let arena_touch t len write =
  (* Deep copy through the shared arena: a bounded chunk physically
     moves through the protected tables; the full spec-driven
     marshaling cost is charged on top. *)
  if t.arena_va <> 0 && len > 0 then begin
    let n = min len t.arena_bytes in
    if write then
      Veil_core.Encsvc.write_mem_sub ~bucket:C.Copy t.sys.Veil_core.Boot.enc (vcpu t) t.enclave
        ~va:t.arena_va t.arena_scratch 0 n
    else
      Veil_core.Encsvc.read_mem_into ~bucket:C.Copy t.sys.Veil_core.Boot.enc (vcpu t) t.enclave
        ~va:t.arena_va t.arena_scratch 0 n;
    let marshal_extra = C.deep_copy_cost len - C.copy_cost n in
    Sevsnp.Vcpu.charge (vcpu t) C.Copy marshal_extra;
    t.stats.redirect_cycles <- t.stats.redirect_cycles + C.copy_cost n + marshal_extra
  end

let kill t reason =
  t.killed <- true;
  if t.is_inside then leave t;
  raise (Enclave_killed reason)

let ocall t sys args =
  if not t.is_inside then invalid_arg "Runtime.ocall: not inside the enclave";
  if t.killed then raise (Enclave_killed "enclave was killed");
  t.stats.ocalls <- t.stats.ocalls + 1;
  let spec = Spec.spec_of sys in
  if not spec.Spec.sdk_supported then
    kill t (Printf.sprintf "unsupported system call %s" (S.to_string sys));
  match Sanitizer.check_call spec args with
  | Error e ->
      charge_redirect t 200;
      ignore e;
      K.RErr K.EINVAL
  | Ok () ->
      let prof = profiler t in
      let prof_on = Obs.Profiler.enabled prof in
      let vc = (vcpu t).Sevsnp.Vcpu.id in
      if prof_on then
        Obs.Profiler.push prof ~vcpu:vc
          ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl (vcpu t)))
          ~ts:(Sevsnp.Vcpu.rdtsc (vcpu t)) "ocall";
      (* Deep-copy arguments into the untrusted arena (§6.2). *)
      let in_bytes = Spec.copy_in_bytes spec args in
      let sanitize_cost = 800 + (60 * List.length args) in
      Sevsnp.Vcpu.charge (vcpu t) C.Compute sanitize_cost;
      t.stats.redirect_cycles <- t.stats.redirect_cycles + sanitize_cost;
      t.stats.redirect_bytes <- t.stats.redirect_bytes + in_bytes;
      arena_touch t in_bytes true;
      (* Exit to the untrusted application, which executes the call. *)
      leave t;
      maybe_tick t;
      let ret = Kern.invoke t.sys.Veil_core.Boot.kernel t.proc sys args in
      enter t;
      (* Copy results back in and sanitize returned values. *)
      let out_bytes = Spec.copy_out_bytes ret in
      t.stats.redirect_bytes <- t.stats.redirect_bytes + out_bytes;
      arena_touch t out_bytes false;
      let lo, hi = enclave_range t in
      let result =
        match Sanitizer.iago_check spec ret ~enclave_lo:lo ~enclave_hi:hi with
        | Ok () -> ret
        | Error _ -> K.RErr K.EFAULT
      in
      if prof_on then Obs.Profiler.pop prof ~vcpu:vc ~ts:(Sevsnp.Vcpu.rdtsc (vcpu t));
      result

(* §10 batching: one exit amortized over the whole batch. *)
let ocall_batch t calls =
  if not t.is_inside then invalid_arg "Runtime.ocall_batch: not inside the enclave";
  if t.killed then raise (Enclave_killed "enclave was killed");
  (* validate + marshal everything before paying the exit *)
  let prepared =
    List.map
      (fun (sys, args) ->
        let spec = Spec.spec_of sys in
        if not spec.Spec.sdk_supported then
          kill t (Printf.sprintf "unsupported system call %s in batch" (S.to_string sys));
        (sys, args, spec, Sanitizer.check_call spec args))
      calls
  in
  let in_bytes =
    List.fold_left
      (fun acc (_, args, spec, ok) ->
        match ok with Ok () -> acc + Spec.copy_in_bytes spec args | Error _ -> acc)
      0 prepared
  in
  List.iter
    (fun (_, args, _, _) ->
      let sanitize_cost = 800 + (60 * List.length args) in
      Sevsnp.Vcpu.charge (vcpu t) C.Compute sanitize_cost;
      t.stats.redirect_cycles <- t.stats.redirect_cycles + sanitize_cost)
    prepared;
  t.stats.ocalls <- t.stats.ocalls + List.length calls;
  t.stats.redirect_bytes <- t.stats.redirect_bytes + in_bytes;
  arena_touch t in_bytes true;
  leave t;
  maybe_tick t;
  let rets =
    List.map
      (fun (sys, args, _, ok) ->
        match ok with
        | Error _ -> K.RErr K.EINVAL
        | Ok () -> Kern.invoke t.sys.Veil_core.Boot.kernel t.proc sys args)
      prepared
  in
  enter t;
  let out_bytes = List.fold_left (fun acc r -> acc + Spec.copy_out_bytes r) 0 rets in
  t.stats.redirect_bytes <- t.stats.redirect_bytes + out_bytes;
  arena_touch t out_bytes false;
  let lo, hi = enclave_range t in
  List.map2
    (fun (_, _, spec, _) ret ->
      match Sanitizer.iago_check spec ret ~enclave_lo:lo ~enclave_hi:hi with
      | Ok () -> ret
      | Error _ -> K.RErr K.EFAULT)
    prepared rets

(* §10 multi-threading: pin the enclave thread to another VCPU (the OS
   scheduler asks VeilS-ENC to synchronize that VCPU's Dom_ENC
   instance first), then run the body there. *)
let run_on t target_vcpu body =
  if t.killed then raise (Enclave_killed "enclave was killed");
  if t.is_inside then invalid_arg "Runtime.run_on: already inside";
  (match
     Veil_core.Monitor.os_call t.sys.Veil_core.Boot.mon t.sys.Veil_core.Boot.vcpu
       (Veil_core.Idcb.R_enclave_schedule
          { enclave_id = t.desc.Ed.enclave_id; vcpu_id = target_vcpu.Sevsnp.Vcpu.id })
   with
  | Veil_core.Idcb.Resp_ok -> ()
  | Veil_core.Idcb.Resp_error e -> failwith ("run_on: " ^ e)
  | _ -> failwith "run_on: unexpected response");
  t.cur_vcpu <- Some target_vcpu;
  Fun.protect
    ~finally:(fun () -> t.cur_vcpu <- None)
    (fun () -> run t body)

let malloc t n = Dlmalloc.malloc t.heap n
let free t addr = Dlmalloc.free t.heap addr

let read_data t ~va ~len =
  Veil_core.Encsvc.read_mem t.sys.Veil_core.Boot.enc (vcpu t) t.enclave ~va ~len

let write_data t ~va data =
  Veil_core.Encsvc.write_mem t.sys.Veil_core.Boot.enc (vcpu t) t.enclave ~va data
