module C = Sevsnp.Cycles
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

(* Non-option mutable fields: the submit fast path is plain stores, so
   a prepared submission allocates nothing (the alloc-check in bench
   micro holds it to exactly 0 words/op). [sl_busy]/[sl_done] carry
   the state the options used to encode. *)
type slot = {
  mutable sl_busy : bool;  (* request posted, not yet drained *)
  mutable sl_sys : S.t;
  mutable sl_args : K.arg list;
  mutable sl_done : bool;  (* completion present, not yet polled *)
  mutable sl_res : K.ret;
}

type t = {
  rt : Runtime.t;
  slots : slot array;
  mutable next : int;
  mutable total : int;
}

type ticket = int

(* The ring logically lives in the shared arena; its slot metadata is
   modeled as OCaml state while every submit/complete charges the
   arena-crossing copy costs. *)
let create rt ~slots =
  if slots <= 0 then Error "exitless: need at least one slot"
  else begin
    let _, _ = Runtime.enclave_range rt in
    Ok
      {
        rt;
        slots =
          Array.init slots (fun _ ->
              { sl_busy = false; sl_sys = S.Getpid; sl_args = []; sl_done = false; sl_res = K.RInt 0 });
        next = 0;
        total = 0;
      }
  end

let charge_enclave t n = Sevsnp.Vcpu.charge (Runtime.system t.rt).Veil_core.Boot.vcpu C.Copy n

(* A prepared submission: spec lookup, sanitizer pass and the
   arena-crossing copy cost are paid once, so resubmitting it is pure
   stores + integer math (FlexSC's registered entries; io_uring's
   reusable SQEs). *)
type prepared = { p_sys : S.t; p_args : K.arg list; p_cost : int }

let prepare sys args =
  let spec = Spec.spec_of sys in
  if not spec.Spec.sdk_supported then Error ("exitless: unsupported call " ^ S.to_string sys)
  else
    match Sanitizer.check_call spec args with
    | Error e -> Error ("exitless: " ^ e)
    | Ok () ->
        Ok { p_sys = sys; p_args = args; p_cost = C.deep_copy_cost (Spec.copy_in_bytes spec args) + 400 }

let submit_prepared t p =
  let slot = t.slots.(t.next mod Array.length t.slots) in
  if slot.sl_busy then failwith "exitless: ring full (drain the worker)";
  (* marshal the request into the shared ring: deep copy, but no
     domain switch *)
  charge_enclave t p.p_cost;
  slot.sl_sys <- p.p_sys;
  slot.sl_args <- p.p_args;
  slot.sl_busy <- true;
  slot.sl_done <- false;
  let ticket = t.next in
  t.next <- t.next + 1;
  t.total <- t.total + 1;
  ticket

let cancel t ticket =
  let slot = t.slots.(ticket mod Array.length t.slots) in
  if slot.sl_busy then begin
    slot.sl_busy <- false;
    if t.next = ticket + 1 then t.next <- ticket
  end

let submit t sys args =
  match prepare sys args with
  | Error _ as e -> e
  | Ok p ->
      if t.slots.(t.next mod Array.length t.slots).sl_busy then
        Error "exitless: ring full (drain the worker)"
      else Ok (submit_prepared t p)

let poll t ticket =
  let slot = t.slots.(ticket mod Array.length t.slots) in
  if slot.sl_done then begin
    charge_enclave t (C.deep_copy_cost (Spec.copy_out_bytes slot.sl_res) + 200);
    slot.sl_done <- false;
    Some slot.sl_res
  end
  else None

let drain_on t worker =
  let sys_boot = Runtime.system t.rt in
  let kernel = sys_boot.Veil_core.Boot.kernel in
  let completed = ref 0 in
  Array.iter
    (fun slot ->
      if slot.sl_busy then begin
        (* the worker VCPU pays the kernel work (it runs at Dom_UNT
           already: no switch on the enclave's VCPU) *)
        Sevsnp.Vcpu.charge worker C.Kernel C.syscall_base;
        let ret = Guest_kernel.Kernel.invoke kernel (Runtime.proc t.rt) slot.sl_sys slot.sl_args in
        slot.sl_busy <- false;
        slot.sl_res <- ret;
        slot.sl_done <- true;
        incr completed
      end)
    t.slots;
  !completed

let await t ~worker ticket =
  match poll t ticket with
  | Some r -> r
  | None ->
      ignore (drain_on t worker);
      (match poll t ticket with
      | Some r -> r
      | None -> failwith "exitless: completion lost")

let pending t = Array.fold_left (fun acc s -> if s.sl_busy then acc + 1 else acc) 0 t.slots

let submitted_total t = t.total
