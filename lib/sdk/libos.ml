module C = Sevsnp.Cycles
module K = Guest_kernel.Ktypes

type backing =
  | Mem of Buffer.t  (** in-enclave containerized file *)
  | Host of int  (** fd on the host kernel, via redirection *)

type file = {
  path : string;
  mutable backing : backing;
  mode : [ `Read | `Write | `Append ];
  wbuf : Buffer.t;  (** write-behind buffer *)
  mutable rbuf : bytes;  (** read-ahead buffer *)
  mutable rpos : int;  (** cursor into [rbuf] *)
  mutable fpos : int;  (** stream position for host reads *)
  mutable closed : bool;
}

type t = {
  rt : Runtime.t;
  stdio_buffer : int;
  mutable mounts : string list;
  memfs : (string, Buffer.t) Hashtbl.t;
  mutable saved : int;
}

let create ?(stdio_buffer = 8192) rt =
  { rt; stdio_buffer; mounts = []; memfs = Hashtbl.create 16; saved = 0 }

let mount_memfs t ~prefix = t.mounts <- prefix :: t.mounts

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let is_memfs_path t path = List.exists (fun p -> starts_with ~prefix:p path) t.mounts

let charge_compute t n = Runtime.compute t.rt n

let ocalls_saved t = t.saved

(* --- open/close --- *)

let fopen t path ~mode =
  if is_memfs_path t path then begin
    t.saved <- t.saved + 1 (* the open itself never leaves the enclave *);
    charge_compute t 600;
    let buf =
      match (Hashtbl.find_opt t.memfs path, mode) with
      | Some b, `Append -> b
      | Some b, `Read -> b
      | Some _, `Write ->
          let b = Buffer.create 256 in
          Hashtbl.replace t.memfs path b;
          b
      | None, `Read -> Buffer.create 0 |> fun b -> Hashtbl.replace t.memfs path b; b
      | None, (`Write | `Append) ->
          let b = Buffer.create 256 in
          Hashtbl.replace t.memfs path b;
          b
    in
    Ok
      {
        path;
        backing = Mem buf;
        mode;
        wbuf = Buffer.create t.stdio_buffer;
        rbuf = Bytes.empty;
        rpos = 0;
        fpos = 0;
        closed = false;
      }
  end
  else begin
    let flags =
      match mode with
      | `Read -> Libc.o_rdonly
      | `Write -> Libc.o_creat lor Libc.o_wronly lor Libc.o_trunc
      | `Append -> Libc.o_creat lor Libc.o_wronly lor Libc.o_append
    in
    match Libc.open_ t.rt path ~flags ~mode:0o644 with
    | Ok fd ->
        Ok
          {
            path;
            backing = Host fd;
            mode;
            wbuf = Buffer.create t.stdio_buffer;
            rbuf = Bytes.empty;
            rpos = 0;
            fpos = 0;
            closed = false;
          }
    | Error e -> Error (K.errno_to_string e)
  end

let flush_wbuf t f =
  if Buffer.length f.wbuf = 0 then Ok ()
  else begin
    let data = Buffer.to_bytes f.wbuf in
    Buffer.clear f.wbuf;
    match f.backing with
    | Mem b ->
        charge_compute t (C.copy_cost (Bytes.length data));
        Buffer.add_bytes b data;
        Ok ()
    | Host fd -> (
        match Libc.write t.rt fd data with
        | Ok _ -> Ok ()
        | Error e -> Error (K.errno_to_string e))
  end

let fwrite t f data =
  if f.closed then Error "stream closed"
  else if f.mode = `Read then Error "stream opened read-only"
  else begin
    charge_compute t (120 + C.copy_cost (Bytes.length data));
    Buffer.add_bytes f.wbuf data;
    (* each buffered write that does not flush saves one redirection *)
    if Buffer.length f.wbuf < t.stdio_buffer then begin
      t.saved <- t.saved + (match f.backing with Host _ -> 1 | Mem _ -> 1);
      Ok (Bytes.length data)
    end
    else
      match flush_wbuf t f with Ok () -> Ok (Bytes.length data) | Error _ as e -> Result.bind e (fun _ -> assert false)
  end

let fill_rbuf t f =
  match f.backing with
  | Mem b ->
      (* Blit just the window we need — copying the whole file per
         refill made every read O(file size). *)
      let n = min t.stdio_buffer (Buffer.length b - f.fpos) in
      if n <= 0 then Bytes.empty
      else begin
        charge_compute t (C.copy_cost n);
        t.saved <- t.saved + 1;
        let out = Bytes.create n in
        Buffer.blit b f.fpos out 0 n;
        out
      end
  | Host fd -> (
      match Libc.pread t.rt fd ~len:t.stdio_buffer ~pos:f.fpos with
      | Ok b -> b
      | Error _ -> Bytes.empty)

let fread t f n =
  if f.closed then Error "stream closed"
  else if f.mode <> `Read then Error "stream not opened for reading"
  else begin
    let out = Buffer.create n in
    let rec go () =
      if Buffer.length out >= n then ()
      else begin
        if f.rpos >= Bytes.length f.rbuf then begin
          f.rbuf <- fill_rbuf t f;
          f.rpos <- 0;
          f.fpos <- f.fpos + Bytes.length f.rbuf
        end;
        if Bytes.length f.rbuf = 0 then () (* EOF *)
        else begin
          let take = min (n - Buffer.length out) (Bytes.length f.rbuf - f.rpos) in
          Buffer.add_subbytes out f.rbuf f.rpos take;
          f.rpos <- f.rpos + take;
          if take > 0 then begin
            t.saved <- t.saved + 1 (* served from the read-ahead buffer *);
            go ()
          end
        end
      end
    in
    go ();
    charge_compute t (60 + C.copy_cost (Buffer.length out));
    Ok (Buffer.to_bytes out)
  end

let fflush t f = flush_wbuf t f

let fclose t f =
  if f.closed then Error "stream already closed"
  else begin
    match flush_wbuf t f with
    | Error _ as e -> e
    | Ok () ->
        f.closed <- true;
        (match f.backing with
        | Mem _ -> Ok ()
        | Host fd -> (
            match Libc.close t.rt fd with Ok () -> Ok () | Error e -> Error (K.errno_to_string e)))
  end

let unlink t path =
  if is_memfs_path t path then begin
    t.saved <- t.saved + 1;
    if Hashtbl.mem t.memfs path then begin
      Hashtbl.remove t.memfs path;
      Ok ()
    end
    else Error "no such memfs file"
  end
  else match Libc.unlink t.rt path with Ok () -> Ok () | Error e -> Error (K.errno_to_string e)

let exists t path =
  if is_memfs_path t path then Hashtbl.mem t.memfs path
  else
    match Runtime.ocall t.rt Guest_kernel.Sysno.Access [ K.Str path ] with
    | K.RInt 0 -> true
    | _ -> false

let file_size t path =
  if is_memfs_path t path then Option.map Buffer.length (Hashtbl.find_opt t.memfs path)
  else
    match Runtime.ocall t.rt Guest_kernel.Sysno.Stat [ K.Str path ] with
    | K.RStat st -> Some st.K.st_size
    | _ -> None
