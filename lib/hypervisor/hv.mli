(** The (untrusted) host hypervisor.

    Models the KVM side of the paper's prototype (§7): it keeps one
    VMSA per (VCPU, domain), handles the domain-switch hypercall, and
    relays external interrupts according to the policy VMPL-0 software
    installs.  It also exposes the adversarial controls used in the
    security analysis (§8.2): tampering with VMSAs and refusing to
    relay interrupts during enclave execution.

    The hypervisor is *outside* the CVM trust boundary: every guest
    memory access it makes goes through {!Sevsnp.Platform.host_read} /
    [host_write] and is therefore limited to [Shared] pages. *)

type t

type stats = {
  mutable domain_switches : int;
  mutable io_requests : int;
  mutable io_bytes : int;
  mutable interrupts_injected : int;
  mutable page_state_changes : int;
}
(** Snapshot of the hypervisor-side counters.  The live values are
    registered in the platform's {!Obs.Metrics} registry under
    ["hv.*"]; {!stats} reads them out into this record. *)

val create : Sevsnp.Platform.t -> t
(** Attach to the platform (installs the VMGEXIT handler). *)

val platform : t -> Sevsnp.Platform.t
val stats : t -> stats

val launch_cvm :
  t -> entry_name:string -> boot_image:(Sevsnp.Types.gpa * bytes) list -> Sevsnp.Vcpu.t
(** Measured launch: load the boot image, create the boot VCPU with a
    VMPL-0 instance (hypervisor-created, as §3 requires) and enter it.
    The boot VMSA occupies the highest guest frame. *)

val vmsa_for : t -> vcpu_id:int -> vmpl:Sevsnp.Types.vmpl -> Sevsnp.Vmsa.t option
(** The registered instance for a (VCPU, domain), if any. *)

val inject_interrupt : t -> Sevsnp.Vcpu.t -> unit
(** External interrupt during guest execution.  If the interrupted
    instance is not the relay target, the hypervisor re-enters the
    relay-target instance first (§6.2); with {!set_refuse_interrupt_relay}
    it instead forces handling in the interrupted domain, which halts
    the CVM when that domain cannot execute the kernel's handler.
    A second injection on the same VCPU before the guest's handler
    returns (acks) is coalesced, like a fixed-vector APIC — counted
    under ["hv.relay.coalesced"].  Refused relays count under
    ["hv.relay.refused"]; an armed chaos plan can additionally drop,
    duplicate, reorder (["hv.relay.dropped"], ["chaos.relay_dup"],
    ["chaos.relay_reorder"]) or refuse individual relays.  Every
    drop/refuse/coalesce emits an instant trace event. *)

val set_interrupt_handler : t -> (Sevsnp.Vcpu.t -> unit) -> unit
(** Guest kernel's interrupt service routine (simulation hook; runs
    after the hypervisor has re-entered the relay-target domain). *)

val kernel_handler_frame : t -> Sevsnp.Types.gpfn -> unit
(** Tell the simulated interrupt path which frame holds the kernel's
    handler text (used to evaluate the refuse-relay attack). *)

(** Deterministic VCPU interleaving (Veil-SMP).  The host scheduler
    picks which runnable VCPU gets the next timeslice; same policy +
    same VCPU count (+ same seed, for [Seeded]) produce the identical
    schedule, recorded step-by-step in a journal for byte-for-byte
    replay comparison. *)
module Interleave : sig
  type policy =
    | Round_robin  (** cursor walks 0..n-1, skipping idle VCPUs *)
    | Seeded of int
        (** an xorshift stream (chaos-PRNG family) picks the start
            VCPU each step; the scan to the first runnable one from
            there is deterministic too *)
    | Scripted of string
        (** byte-for-byte replay of a recorded journal: step [i] takes
            the VCPU named by character [i].  Raises
            {!Journal_exhausted} when the schedule needs more steps
            than the journal provides (a replay must never silently
            truncate), and {!Journal_mismatch} when the scripted
            choice is out of range or not runnable (the journal was
            recorded against a different guest). *)
    | Guided of (int list -> int)
        (** Veil-Explore branch points: at each decision the chooser
            receives the full runnable set (ascending VCPU ids,
            non-empty) and returns the VCPU to step.  Returning an id
            outside the set raises [Invalid_argument]. *)

  exception Journal_exhausted of { journal : string; steps : int }
  (** [steps] is the 1-based schedule step that found the journal
      empty. *)

  exception Journal_mismatch of { journal : string; step : int; chosen : int }
  (** The journal prescribed [chosen] at 0-based [step] but that VCPU
      does not exist or is not runnable. *)

  type sched

  val create : ?policy:policy -> nvcpus:int -> unit -> sched
  (** Default policy is [Round_robin].  [Scripted]/[Guided] schedules
      support at most 10 VCPUs (one journal character per step). *)

  val next : sched -> runnable:(int -> bool) -> int option
  (** Pick the next VCPU to step; [None] when no VCPU is runnable.
      Appends the choice to the journal. *)

  val journal : sched -> string
  (** One digit per step: the chosen VCPU id. *)

  val steps : sched -> int
end

(* Adversarial controls (§8) *)

val set_refuse_interrupt_relay : t -> bool -> unit

val try_tamper_vmsa : t -> vcpu_id:int -> vmpl:Sevsnp.Types.vmpl -> (unit, string) result
(** Attempt to overwrite a registered VMSA's saved [rip] through host
    memory access.  Fails on SNP because the VMSA lives in a private
    guest frame. *)

val try_read_guest : t -> Sevsnp.Types.gpa -> int -> (bytes, string) result
