module P = Sevsnp.Platform
module T = Sevsnp.Types
module G = Sevsnp.Ghcb
module C = Sevsnp.Cycles

type stats = {
  mutable domain_switches : int;
  mutable io_requests : int;
  mutable io_bytes : int;
  mutable interrupts_injected : int;
  mutable page_state_changes : int;
}

type t = {
  platform : P.t;
  vmsas : (int * int, Sevsnp.Vmsa.t) Hashtbl.t; (* (vcpu_id, vmpl index) -> instance *)
  switch_policy : (T.gpfn, (T.vmpl * T.vmpl) list) Hashtbl.t;
  (* Counters live in the platform's metrics registry; these are the
     interned handles. *)
  c_switches : Obs.Metrics.counter;
  c_io_requests : Obs.Metrics.counter;
  c_io_bytes : Obs.Metrics.counter;
  c_interrupts : Obs.Metrics.counter;
  c_psc : Obs.Metrics.counter;
  c_relay_refused : Obs.Metrics.counter;
  c_relay_dropped : Obs.Metrics.counter;
  c_relay_coalesced : Obs.Metrics.counter;
  mutable relay_target : T.vmpl option;
  mutable refuse_interrupt_relay : bool;
  mutable interrupt_handler : (Sevsnp.Vcpu.t -> unit) option;
  mutable kernel_handler_gpfn : T.gpfn option;
  mutable deferred_irq : bool;  (* chaos relay_reorder holds one interrupt back *)
}

let platform t = t.platform

let stats t =
  {
    domain_switches = Obs.Metrics.value t.c_switches;
    io_requests = Obs.Metrics.value t.c_io_requests;
    io_bytes = Obs.Metrics.value t.c_io_bytes;
    interrupts_injected = Obs.Metrics.value t.c_interrupts;
    page_state_changes = Obs.Metrics.value t.c_psc;
  }

let vmsa_for t ~vcpu_id ~vmpl = Hashtbl.find_opt t.vmsas (vcpu_id, T.vmpl_index vmpl)

let register_vmsa t (vmsa : Sevsnp.Vmsa.t) =
  Hashtbl.replace t.vmsas (vmsa.Sevsnp.Vmsa.vcpu_id, T.vmpl_index vmsa.Sevsnp.Vmsa.vmpl) vmsa

let current_vmpl vcpu = Sevsnp.Vcpu.vmpl vcpu

let policy_allows t ~ghcb_gpfn ~a ~b =
  match Hashtbl.find_opt t.switch_policy ghcb_gpfn with
  | None -> true
  | Some pairs ->
      List.exists
        (fun (x, y) ->
          (T.equal_vmpl a x && T.equal_vmpl b y) || (T.equal_vmpl a y && T.equal_vmpl b x))
        pairs

let handle_domain_switch t vcpu target_vmpl =
  let vmsa = Sevsnp.Vcpu.current_vmsa vcpu in
  let ghcb_gpfn = T.gpfn_of_gpa vmsa.Sevsnp.Vmsa.ghcb_gpa in
  let from = vmsa.Sevsnp.Vmsa.vmpl in
  Sevsnp.Vcpu.charge vcpu C.Switch C.hv_switch_logic;
  (* The host relay leg, billed while the source instance's clock still
     runs (VMENTER has not happened yet). *)
  let prof = t.platform.P.profiler in
  if Obs.Profiler.enabled prof then
    Obs.Profiler.leaf prof ~vcpu:vcpu.Sevsnp.Vcpu.id ~vmpl:(T.vmpl_index from)
      ~dur:C.hv_switch_logic "hv_relay";
  (* From the guest's point of view the relay leg is pure waiting: the
     VCPU is out of the guest while the (untrusted) host decides to
     re-enter it.  Emit it as a wait edge on the request's causal id. *)
  (let tr = t.platform.P.tracer in
   if Obs.Trace.enabled tr then
     Obs.Trace.complete tr ~bucket:"switch"
       ~id:(Obs.Profiler.id prof ~vcpu:vcpu.Sevsnp.Vcpu.id)
       ~vcpu:vcpu.Sevsnp.Vcpu.id ~vmpl:(T.vmpl_index from)
       ~ts:(Sevsnp.Vcpu.rdtsc vcpu - C.hv_switch_logic) ~dur:C.hv_switch_logic
       (Obs.Trace.Wait Obs.Trace.Relay));
  if not (policy_allows t ~ghcb_gpfn ~a:from ~b:target_vmpl) then
    P.halt t.platform
      (Format.asprintf "domain switch %a -> %a via GHCB frame %d violates installed policy" T.pp_vmpl from
         T.pp_vmpl target_vmpl ghcb_gpfn)
  else begin
    match vmsa_for t ~vcpu_id:vcpu.Sevsnp.Vcpu.id ~vmpl:target_vmpl with
    | None ->
        P.halt t.platform
          (Format.asprintf "no VMSA registered for vcpu %d at %a" vcpu.Sevsnp.Vcpu.id T.pp_vmpl target_vmpl)
    | Some target ->
        Obs.Metrics.incr t.c_switches;
        P.vmenter t.platform vcpu target;
        (* Whole relayed switch as one span: from the moment the source
           instance began its VMGEXIT (pre-charge) to now — exactly the
           calibrated Cycles.domain_switch extent. *)
        let tr = t.platform.P.tracer in
        if Obs.Trace.enabled tr then begin
          let ts0 = vcpu.Sevsnp.Vcpu.last_exit_ts in
          Obs.Trace.complete tr ~bucket:"switch" ~arg:(T.vmpl_index target_vmpl)
            ~id:(Obs.Profiler.id prof ~vcpu:vcpu.Sevsnp.Vcpu.id)
            ~vcpu:vcpu.Sevsnp.Vcpu.id ~vmpl:(T.vmpl_index target_vmpl) ~ts:ts0
            ~dur:(Sevsnp.Vcpu.rdtsc vcpu - ts0) Obs.Trace.Domain_switch
        end
  end

let handle_create_vcpu t vcpu ~vmsa_gpfn ~target_vmpl =
  let ghcb = P.ghcb_of_vcpu t.platform vcpu in
  match P.vmsa_at t.platform vmsa_gpfn with
  | None -> ( (* not a hardware-accepted VMSA: refuse, guest sees error *)
      match ghcb with Some g -> g.G.response <- 1 | None -> ())
  | Some vmsa ->
      if not (T.equal_vmpl vmsa.Sevsnp.Vmsa.vmpl target_vmpl) then (
        match ghcb with Some g -> g.G.response <- 1 | None -> ())
      else begin
        register_vmsa t vmsa;
        (* An instance for a not-yet-running VCPU boots it (AP/hotplug). *)
        let target_vcpu = P.vcpu_by_id t.platform vmsa.Sevsnp.Vmsa.vcpu_id in
        (match target_vcpu with
        | Some v when v.Sevsnp.Vcpu.current = None -> P.vmenter t.platform v vmsa
        | _ -> ());
        match ghcb with Some g -> g.G.response <- 0 | None -> ()
      end

let service_exit t vcpu =
  match P.ghcb_of_vcpu t.platform vcpu with
  | None -> P.halt t.platform "non-automatic exit without a GHCB"
  | Some ghcb -> (
      match ghcb.G.request with
      | G.Req_none -> () (* automatic exit: nothing for the host to do *)
      | G.Req_domain_switch { target_vmpl } ->
          ghcb.G.request <- G.Req_none;
          handle_domain_switch t vcpu target_vmpl
      | G.Req_create_vcpu { vmsa_gpfn; target_vmpl } ->
          ghcb.G.request <- G.Req_none;
          handle_create_vcpu t vcpu ~vmsa_gpfn ~target_vmpl
      | G.Req_io { write; port = _; len } ->
          ghcb.G.request <- G.Req_none;
          Obs.Metrics.incr t.c_io_requests;
          Obs.Metrics.add t.c_io_bytes len;
          Sevsnp.Vcpu.charge vcpu C.Io (C.io_cost len);
          (let tr = t.platform.P.tracer in
           if Obs.Trace.enabled tr then
             Obs.Trace.emit tr ~vcpu:vcpu.Sevsnp.Vcpu.id
               ~vmpl:(T.vmpl_index (current_vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu)
               ~bucket:"io" ~arg:len Obs.Trace.Io);
          ignore write;
          ghcb.G.response <- 0;
          P.vmenter t.platform vcpu (Sevsnp.Vcpu.current_vmsa vcpu)
      | G.Req_page_state_change { gpfn = _; to_shared = _ } ->
          ghcb.G.request <- G.Req_none;
          Obs.Metrics.incr t.c_psc;
          ghcb.G.response <- 0;
          P.vmenter t.platform vcpu (Sevsnp.Vcpu.current_vmsa vcpu)
      | G.Req_set_switch_policy { ghcb_gpfn; allowed } ->
          ghcb.G.request <- G.Req_none;
          (* Only honored from the hypervisor-known VMPL-0 instance; a
             lower domain cannot retune the guard rails. *)
          if T.equal_vmpl (current_vmpl vcpu) T.Vmpl0 then begin
            Hashtbl.replace t.switch_policy ghcb_gpfn allowed;
            ghcb.G.response <- 0
          end
          else ghcb.G.response <- 1;
          P.vmenter t.platform vcpu (Sevsnp.Vcpu.current_vmsa vcpu)
      | G.Req_relay_interrupts_to vmpl ->
          ghcb.G.request <- G.Req_none;
          if T.equal_vmpl (current_vmpl vcpu) T.Vmpl0 then begin
            t.relay_target <- Some vmpl;
            ghcb.G.response <- 0
          end
          else ghcb.G.response <- 1;
          P.vmenter t.platform vcpu (Sevsnp.Vcpu.current_vmsa vcpu)
      | G.Req_halt reason ->
          ghcb.G.request <- G.Req_none;
          P.halt t.platform reason)

(* Veil-Chaos responses are deliberately out of the {0, 1} GHCB
   protocol range so the guest-side sanitizer can tell "the hypervisor
   misbehaved" from any legitimate answer. *)
let chaos_refused_response = 0x5245 (* "RE" *)
let chaos_corrupt_response = 0x6000

let handle_exit t vcpu =
  match t.platform.P.chaos with
  | None -> service_exit t vcpu
  | Some plan ->
      (* pre-service: scheduling delay and exits the guest never asked
         for — pure cycle charges against the interrupted instance *)
      if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Vmgexit_delay then begin
        Sevsnp.Vcpu.charge vcpu C.Switch (1_000 + Chaos.Fault_plan.draw plan 15_000);
        P.chaos_mark t.platform (Some vcpu) "vmgexit_delay"
      end;
      if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Spurious_exit then begin
        Sevsnp.Vcpu.charge vcpu C.Switch (C.automatic_exit + C.vmsa_save + C.vmsa_restore);
        P.chaos_mark t.platform (Some vcpu) "spurious_exit"
      end;
      (* Fetch the GHCB only if a GHCB-touching site can ever fire:
         the lookup allocates, and an armed all-zero plan must cost
         exactly what a disarmed platform does. *)
      let ghcb =
        if
          Chaos.Fault_plan.site_enabled plan Chaos.Fault_plan.Vmgexit_refuse
          || Chaos.Fault_plan.site_enabled plan Chaos.Fault_plan.Ghcb_corrupt
        then P.ghcb_of_vcpu t.platform vcpu
        else None
      in
      let refused =
        match ghcb with
        | Some g -> (
            match g.G.request with
            | G.Req_none | G.Req_halt _ -> false
            | _ -> Chaos.Fault_plan.fire plan Chaos.Fault_plan.Vmgexit_refuse)
        | None -> false
      in
      (match ghcb with
      | Some g when refused ->
          (* decline to service: clear the mailbox, answer out of
             protocol, resume the guest where it was *)
          g.G.request <- G.Req_none;
          g.G.response <- chaos_refused_response;
          P.chaos_mark t.platform (Some vcpu) "vmgexit_refuse";
          P.vmenter t.platform vcpu (Sevsnp.Vcpu.current_vmsa vcpu)
      | _ -> service_exit t vcpu);
      (* post-service: scribble the hypervisor-writable GHCB fields
         (response, exit_info) — never guest-owned state *)
      (match ghcb with
      | Some g when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Ghcb_corrupt ->
          g.G.response <- chaos_corrupt_response lor Chaos.Fault_plan.draw plan 0x1000;
          g.G.exit_info <- Chaos.Fault_plan.draw plan 0x10000;
          P.chaos_mark t.platform (Some vcpu) "ghcb_corrupt"
      | _ -> ());
      if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Shared_bitflip then
        P.chaos_flip_shared t.platform plan

let create platform =
  let m = platform.P.metrics in
  let t =
    {
      platform;
      vmsas = Hashtbl.create 16;
      switch_policy = Hashtbl.create 8;
      c_switches = Obs.Metrics.counter m "hv.domain_switches";
      c_io_requests = Obs.Metrics.counter m "hv.io_requests";
      c_io_bytes = Obs.Metrics.counter m "hv.io_bytes";
      c_interrupts = Obs.Metrics.counter m "hv.interrupts_injected";
      c_psc = Obs.Metrics.counter m "hv.page_state_changes";
      c_relay_refused = Obs.Metrics.counter m "hv.relay.refused";
      c_relay_dropped = Obs.Metrics.counter m "hv.relay.dropped";
      c_relay_coalesced = Obs.Metrics.counter m "hv.relay.coalesced";
      relay_target = None;
      refuse_interrupt_relay = false;
      interrupt_handler = None;
      kernel_handler_gpfn = None;
      deferred_irq = false;
    }
  in
  platform.P.exit_handler <- Some (handle_exit t);
  t

let launch_cvm t ~entry_name ~boot_image =
  P.launch_load t.platform ~entry_name boot_image;
  let vcpu = P.add_boot_vcpu t.platform in
  (* Firmware creates the boot VMSA at the top guest frame, at VMPL-0. *)
  let vmsa_gpfn = Sevsnp.Phys_mem.npages t.platform.P.mem - 1 in
  Sevsnp.Rmp.validate t.platform.P.rmp vmsa_gpfn;
  Sevsnp.Rmp.set_vmsa t.platform.P.rmp vmsa_gpfn true;
  let vmsa = Sevsnp.Vmsa.create ~vcpu_id:vcpu.Sevsnp.Vcpu.id ~vmpl:T.Vmpl0 ~backing_gpfn:vmsa_gpfn in
  (match P.install_vmsa t.platform vmsa with Ok () -> () | Error e -> failwith e);
  register_vmsa t vmsa;
  P.vmenter t.platform vcpu vmsa;
  vcpu

let set_interrupt_handler t f = t.interrupt_handler <- Some f

let kernel_handler_frame t gpfn = t.kernel_handler_gpfn <- Some gpfn

let set_refuse_interrupt_relay t b = t.refuse_interrupt_relay <- b

(* Instant relay events: satellite requirement that every refused /
   dropped / coalesced relay is visible in Perfetto. *)
let relay_event t vcpu name =
  let tr = t.platform.P.tracer in
  if Obs.Trace.enabled tr then
    Obs.Trace.emit tr ~phase:Obs.Trace.Instant ~bucket:"switch" ~vcpu:vcpu.Sevsnp.Vcpu.id
      ~vmpl:(T.vmpl_index (current_vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu)
      (Obs.Trace.Span name)

(* One delivery attempt, past drop/coalesce filtering: charge the
   delivery, relay across domains per [relay_target], honor refusal. *)
let deliver_one t vcpu =
  Sevsnp.Vcpu.charge vcpu C.Switch C.interrupt_delivery;
  let interrupted = Sevsnp.Vcpu.current_vmsa vcpu in
  let deliver () = match t.interrupt_handler with Some f -> f vcpu | None -> () in
  match t.relay_target with
  | Some target when not (T.equal_vmpl interrupted.Sevsnp.Vmsa.vmpl target) ->
      let refused =
        t.refuse_interrupt_relay
        ||
        match t.platform.P.chaos with
        | Some plan when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Relay_refuse ->
            P.chaos_mark t.platform (Some vcpu) "relay_refuse";
            true
        | _ -> false
      in
      if refused then begin
        Obs.Metrics.incr t.c_relay_refused;
        relay_event t vcpu "hv.relay_refused";
        (* Force handling in the interrupted domain: fetching the
           kernel's handler there violates VMPL permissions. *)
        match t.kernel_handler_gpfn with
        | Some gpfn -> P.check_exec t.platform vcpu (T.gpa_of_gpfn gpfn)
        | None -> P.halt t.platform "interrupt with no handler reachable"
      end
      else begin
        P.automatic_exit t.platform vcpu;
        (match vmsa_for t ~vcpu_id:vcpu.Sevsnp.Vcpu.id ~vmpl:target with
        | None -> P.halt t.platform "no relay-target instance"
        | Some target_vmsa -> P.vmenter t.platform vcpu target_vmsa);
        deliver ();
        P.automatic_exit t.platform vcpu;
        P.vmenter t.platform vcpu interrupted
      end
  | _ -> deliver ()

let deliver_acked t vcpu =
  vcpu.Sevsnp.Vcpu.pending_interrupts <- 1;
  deliver_one t vcpu;
  (* the handler returned: the guest has acked the vector *)
  vcpu.Sevsnp.Vcpu.pending_interrupts <- 0

let inject_interrupt t vcpu =
  Obs.Metrics.incr t.c_interrupts;
  if vcpu.Sevsnp.Vcpu.pending_interrupts > 0 then begin
    (* same vector already posted and not yet acked (e.g. injected
       again from inside the handler): hardware coalesces *)
    Obs.Metrics.incr t.c_relay_coalesced;
    relay_event t vcpu "hv.relay_coalesced"
  end
  else
    match t.platform.P.chaos with
    | None -> deliver_acked t vcpu
    | Some plan ->
        if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Relay_drop then begin
          Obs.Metrics.incr t.c_relay_dropped;
          relay_event t vcpu "hv.relay_dropped";
          P.chaos_mark t.platform (Some vcpu) "relay_drop"
        end
        else if
          Chaos.Fault_plan.fire plan Chaos.Fault_plan.Relay_reorder && not t.deferred_irq
        then begin
          (* hold this interrupt back; it will be delivered after the
             next one, i.e. out of order *)
          t.deferred_irq <- true;
          P.chaos_mark t.platform (Some vcpu) "relay_reorder"
        end
        else begin
          deliver_acked t vcpu;
          if t.deferred_irq then begin
            t.deferred_irq <- false;
            (* the held-back older interrupt arrives after its younger peer *)
            deliver_acked t vcpu
          end;
          if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Relay_dup then begin
            P.chaos_mark t.platform (Some vcpu) "relay_dup";
            deliver_acked t vcpu
          end
        end

(* --- Veil-SMP: deterministic VCPU interleaving --------------------- *)

(* The host scheduler decides which runnable VCPU gets the next
   timeslice.  For the simulation this must be *deterministic*: the
   same seed and the same VCPU count must yield the identical
   schedule, so chaos replay-identity and the E-scale reproducibility
   check keep holding with SMP guests.  Two policies:

   - [Round_robin]: cursor walks 0..n-1, skipping non-runnable VCPUs.
   - [Seeded]: an xorshift stream (same 63-bit generator family as
     {!Chaos.Fault_plan}) picks the starting VCPU each step; the scan
     to the first runnable VCPU from there is deterministic too.

   Every choice is appended to a journal (one digit per step) so two
   runs can be compared byte-for-byte and a diverging schedule can be
   uploaded as a CI artifact.

   Veil-Explore turns each decision into an explicit *branch point*:
   [Scripted] drives the schedule from a previously recorded journal
   (byte-for-byte replay, with a typed error — never silent truncation
   — when the journal is shorter than the schedule it drives), and
   [Guided] hands the full runnable set to an external chooser so a
   schedule-tree search can enumerate the alternatives it did not
   take. *)
module Interleave = struct
  type policy =
    | Round_robin
    | Seeded of int
    | Scripted of string
    | Guided of (int list -> int)

  exception Journal_exhausted of { journal : string; steps : int }
  exception Journal_mismatch of { journal : string; step : int; chosen : int }

  type sched = {
    nvcpus : int;
    policy : policy;
    mutable state : int;
    mutable cursor : int;
    mutable steps : int;
    journal : Buffer.t;
  }

  let create ?(policy = Round_robin) ~nvcpus () =
    if nvcpus < 1 then invalid_arg "Hv.Interleave.create: nvcpus must be >= 1";
    (match policy with
    | Scripted _ | Guided _ when nvcpus > 10 ->
        (* the journal encodes one VCPU id per character *)
        invalid_arg "Hv.Interleave.create: scripted/guided schedules support at most 10 VCPUs"
    | _ -> ());
    let state =
      match policy with
      | Round_robin | Scripted _ | Guided _ -> 1
      | Seeded seed ->
          (* Same avalanche + force-odd trick as the chaos PRNG: the
             all-zero fixpoint is unreachable for every seed. *)
          let mixed = (seed * 0x9E3779B1) lxor (seed lsr 16) lxor 0x6A09E667 in
          (mixed land max_int) lor 1
    in
    { nvcpus; policy; state; cursor = 0; steps = 0; journal = Buffer.create 256 }

  (* 63-bit xorshift (13/7/17), kept inside [max_int]. *)
  let next_raw t =
    let s = t.state in
    let s = s lxor (s lsl 13) land max_int in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) land max_int in
    t.state <- s;
    s

  let record t v =
    t.cursor <- (v + 1) mod t.nvcpus;
    t.steps <- t.steps + 1;
    Buffer.add_string t.journal (string_of_int v);
    Some v

  (* Runnable VCPUs in ascending id order — the branch-point alphabet. *)
  let enabled t ~runnable =
    let rec go v acc = if v < 0 then acc else go (v - 1) (if runnable v then v :: acc else acc) in
    go (t.nvcpus - 1) []

  let next t ~runnable =
    match t.policy with
    | Round_robin | Seeded _ -> (
        let start =
          match t.policy with
          | Round_robin -> t.cursor
          | Seeded _ -> next_raw t mod t.nvcpus
          | Scripted _ | Guided _ -> assert false
        in
        let rec scan k =
          if k >= t.nvcpus then None
          else
            let v = (start + k) mod t.nvcpus in
            if runnable v then Some v else scan (k + 1)
        in
        match scan 0 with Some v -> record t v | None -> None)
    | Scripted j -> (
        match enabled t ~runnable with
        | [] -> None
        | en ->
            if t.steps >= String.length j then
              raise (Journal_exhausted { journal = j; steps = t.steps + 1 });
            let c = Char.code j.[t.steps] - Char.code '0' in
            if c < 0 || c >= t.nvcpus || not (List.mem c en) then
              raise (Journal_mismatch { journal = j; step = t.steps; chosen = c });
            record t c)
    | Guided f -> (
        match enabled t ~runnable with
        | [] -> None
        | en ->
            let c = f en in
            if not (List.mem c en) then
              invalid_arg "Hv.Interleave: guide chose a VCPU outside the runnable set";
            record t c)

  let journal t = Buffer.contents t.journal
  let steps t = t.steps
end

let try_tamper_vmsa t ~vcpu_id ~vmpl =
  match vmsa_for t ~vcpu_id ~vmpl with
  | None -> Error "no such VMSA"
  | Some vmsa ->
      let gpa = T.gpa_of_gpfn vmsa.Sevsnp.Vmsa.backing_gpfn in
      (* Try to overwrite the saved rip through host memory. *)
      (match P.host_write t.platform gpa (Bytes.make 8 '\xff') with
      | Ok () -> Ok () (* would indicate a broken platform *)
      | Error e -> Error e)

let try_read_guest t gpa len = P.host_read t.platform gpa len
