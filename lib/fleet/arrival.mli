(** Open-loop traffic generation for Veil-Fleet.

    An open-loop generator decides arrival instants *without looking
    at the system*: requests keep coming while earlier ones queue,
    which is what exposes tail latency a closed-loop client silently
    omits (coordinated omission — the waiting client stops offering
    load exactly when the system is slow).

    The PRNG here is a family of its own, domain-separated from the
    chaos / interleaver seeds ([Chaos.Fault_plan]'s xorshift over a
    [0x9E3779B1]/[0x6A09E667] mix): fleet runs reuse one operator seed
    for fault plans *and* traffic, and a shared stream would correlate
    fault bursts with arrival bursts, biasing every tail percentile.
    Arrival state derives through a SplitMix-style finalizer under an
    explicit ["ARRIVAL"] domain tag, and outputs go through an
    xorshift* multiplier the fault-plan generator does not have — the
    two families never produce the same stream, even on adversarial
    seeds (see the regression in [test/t_fleet.ml]). *)

type process =
  | Poisson of { rate : float }
      (** Memoryless arrivals at [rate] requests/second (exponential
          inter-arrival gaps). *)
  | Mmpp of { low : float; high : float; dwell_low : float; dwell_high : float }
      (** 2-state Markov-modulated Poisson process — bursty traffic.
          Rates in requests/second; expected state dwell times in
          seconds.  Starts in the low state. *)

val mean_rate : process -> float
(** Long-run offered load in requests/second (MMPP: dwell-weighted). *)

type t

val make : seed:int -> stream:int -> process -> t
(** [stream] splits one seed into independent generators (the fleet
    uses stream 0 for arrivals and stream [guest_id + 1] for each
    guest's request-content draws). *)

val next_gap : t -> int
(** Cycles until the next arrival (>= 0). *)

val pareto_size : t -> xm:int -> alpha:float -> cap:int -> int
(** Heavy-tailed request size: truncated Pareto on [[xm, cap]] with
    shape [alpha] (smaller = heavier tail). *)

val uniform : t -> int -> int
(** Uniform draw in [[0, n-1]]; 0 when [n <= 0]. *)

val draw : t -> int
(** One raw 63-bit output (exposed for the domain-separation
    regression tests). *)
