(* Veil-Fleet driver (see the .mli).  One simulated host, N isolated
   platform instances, open-loop traffic.

   Dispatch determinism: both the guest pick (round-robin) and the
   lane pick (served-count mod vcpus) are functions of request *index*
   only, never of co-tenant timing.  A least-free-lane policy would
   couple a guest's execution trace to the global arrival clock (its
   lane choice would depend on how arrivals were thinned across
   co-tenants), and then neither the wait-ledger isolation test nor
   the cross-tenant oracle could demand bit-identical victim numbers.
   The queue model is per-lane FCFS under round-robin dispatch. *)

module Arrival = Arrival
module T = Sevsnp.Types
module P = Sevsnp.Platform
module V = Sevsnp.Vcpu
module C = Sevsnp.Cycles
module Kern = Guest_kernel.Kernel
module S = Guest_kernel.Sysno
module B = Veil_core.Boot
module L = Veil_core.Layout
module Smp = Veil_core.Smp
module M = Obs.Metrics
module FP = Chaos.Fault_plan
module Env = Workloads.Env
module Http = Workloads.Http
module Mcache = Workloads.Mcache
module Sqldb = Workloads.Sqldb

type workload = Http | Memcached | Sqldb

let workload_name = function Http -> "http" | Memcached -> "memcached" | Sqldb -> "sqldb"

let workload_of_name = function
  | "http" -> Some Http
  | "memcached" -> Some Memcached
  | "sqldb" -> Some Sqldb
  | _ -> None

type mode = Open_loop | Closed_loop

type lb = Round_robin | Least_loaded

type config = {
  guests : int;
  vcpus : int;
  seed : int;
  requests : int;
  workload : workload;
  process : Arrival.process;
  mode : mode;
  lb : lb;
  rings : bool;
  chaos : bool;
  pulse : int option;
  hostile : int option;
  first_guest : int;
}

let default =
  {
    guests = 4;
    vcpus = 4;
    seed = 97;
    requests = 400;
    workload = Http;
    process = Arrival.Poisson { rate = 2000.0 };
    mode = Open_loop;
    lb = Round_robin;
    rings = false;
    chaos = false;
    pulse = None;
    hostile = None;
    first_guest = 0;
  }

let guest_seed cfg id = (((cfg.seed + 1) * 1_000_003) + ((id + 1) * 48271)) land max_int

let guest_npages = 4096

(* --- reports --- *)

type guest_report = {
  gr_id : int;
  gr_seed : int;
  gr_requests : int;
  gr_p50 : int;
  gr_p99 : int;
  gr_p999 : int;
  gr_mean_svc : float;
  gr_wait : Veil_core.Monitor.wait_stats;
  gr_journal : string;
  gr_slog_ok : bool;
  gr_log_lines : int;
  gr_data_digest : string;
  gr_hist_digest : string;
  gr_blocked : int;
  gr_hostile : bool;
  gr_chaos_hits : int;
}

type report = {
  r_guests : guest_report array;
  r_mode : mode;
  r_workload : workload;
  r_vcpus : int;
  r_requests : int;
  r_wall_cycles : int;
  r_throughput : float;
  r_offered : float;
  r_p50 : int;
  r_p99 : int;
  r_p999 : int;
  r_mean : float;
  r_merged_digest : string;
  r_lb_journal : string;
}

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let sha_hex s = hex (Veil_crypto.Sha256.digest_string s)

let digit36 i = "0123456789abcdefghijklmnopqrstuvwxyz".[i mod 36]

(* --- per-guest state --- *)

type wl_state =
  | St_http of { server : Http.server; port : int }
  | St_mc of { store : Mcache.t; conn : int; server_conn : int }
  | St_sql of { db : Sqldb.t; mutable next_row : int }

type guest = {
  g_id : int;
  g_seed : int;
  g_sys : B.veil_system;
  g_smp : Smp.t;
  g_env : Env.t; (* server-side process *)
  g_cli : Env.t; (* load-generator process, same guest *)
  g_rng : Arrival.t; (* request-content stream: arrival family, stream id+1 *)
  g_state : wl_state;
  g_plan : FP.t option;
  g_lat : M.histogram;
  g_svc : M.histogram;
  g_reqs : M.counter;
  g_lanes : int array; (* absolute fleet-clock busy-until per lane *)
  g_journal : Buffer.t;
  mutable g_served : int;
  mutable g_blocked : int;
  g_hostile : bool;
}

let http_port = 9400
let mc_port = 11311
let http_sizes = [| 1024; 2048; 4096; 8192; 16384 |]

let http_file_of_size sz =
  let rec go i = if i >= Array.length http_sizes - 1 || http_sizes.(i) >= sz then i else go (i + 1) in
  go 0

(* Recoverable chaos sites only: duplicated relays ride the replay
   cache, delays and spurious exits are pure cost.  A per-guest plan
   must never halt the guest — halting faults belong to the chaos
   trials, not a fleet soak. *)
let derived_plan seed =
  let plan = FP.create ~seed () in
  FP.set_site plan FP.Relay_dup ~prob:0.02 ();
  FP.set_site plan FP.Vmgexit_delay ~prob:0.03 ();
  FP.set_site plan FP.Spurious_exit ~prob:0.02 ();
  plan

let mk_env kernel proc ~rings ~seed =
  {
    Env.sys = (fun s a -> Kern.invoke kernel proc s a);
    compute = (fun n -> V.charge (Kern.vcpu kernel) C.Compute n);
    env_rng = Veil_crypto.Rng.create seed;
    env_rings = rings;
  }

(* memcached: one serve pass over every queued command (the servers.ml
   protocol and cycle calibration, shared store semantics) *)
let mc_serve env store server_conn =
  let rec loop () =
    match Env.recv env server_conn 4096 with
    | None -> ()
    | Some req when Bytes.length req = 0 -> ()
    | Some req ->
        List.iter
          (fun line ->
            let line = String.trim line in
            if line <> "" then begin
              env.Env.compute 610_000 (* command parse, hash, LRU, slab bookkeeping *);
              match String.split_on_char ' ' line with
              | [ "get"; key ] -> (
                  match Mcache.get store key with
                  | Some v ->
                      let reply =
                        Bytes.concat Bytes.empty
                          [
                            Bytes.of_string (Printf.sprintf "VALUE %s 0 %d\r\n" key (Bytes.length v));
                            v;
                            Bytes.of_string "\r\nEND\r\n";
                          ]
                      in
                      ignore (Env.send env server_conn reply)
                  | None -> ignore (Env.send env server_conn (Bytes.of_string "END\r\n")))
              | [ "set"; key; len ] ->
                  let n = int_of_string len in
                  env.Env.compute (400 + n);
                  Mcache.set store ~key ~value:(Veil_crypto.Rng.bytes env.Env.env_rng n) ();
                  ignore (Env.send env server_conn (Bytes.of_string "STORED\r\n"))
              | _ -> ignore (Env.send env server_conn (Bytes.of_string "ERROR\r\n"))
            end)
          (String.split_on_char '\n' (Bytes.to_string req));
        loop ()
  in
  loop ()

let sql_pad rng n = String.init n (fun _ -> Char.chr (Char.code 'a' + Arrival.uniform rng 26))

let setup_workload cfg env cli rng =
  match cfg.workload with
  | Http ->
      if not (Env.file_exists cli "/srv/www") then Env.mkdir cli "/srv/www";
      Array.iteri
        (fun i sz ->
          let fd =
            Env.open_ cli
              (Printf.sprintf "/srv/www/file%d.html" i)
              ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc)
              ~mode:0o644
          in
          ignore (Env.write cli fd (Veil_crypto.Rng.bytes cli.Env.env_rng sz));
          Env.close cli fd)
        http_sizes;
      let server = Http.server_start env ~port:http_port ~docroot:"/srv/www" in
      St_http { server; port = http_port }
  | Memcached ->
      let listen_fd = Env.socket env in
      Env.bind env listen_fd ~port:mc_port;
      Env.listen env listen_fd ~backlog:32;
      let store = Mcache.create ~memory_limit:(1 lsl 20) () in
      let conn = Http.client_connect cli ~port:mc_port in
      let server_conn =
        match Env.accept env listen_fd with
        | Some c -> c
        | None -> failwith "fleet memcached: no pending connection"
      in
      (* warm the store so gets hit *)
      for i = 0 to 63 do
        ignore (Env.send cli conn (Bytes.of_string (Printf.sprintf "set key%d 512\n" i)));
        mc_serve env store server_conn;
        ignore (Env.recv cli conn 256)
      done;
      St_mc { store; conn; server_conn }
  | Sqldb ->
      let db = Sqldb.open_db env ~dir:"/fleetdb" in
      let exec stmt =
        match Sqldb.exec db stmt with
        | Ok _ -> ()
        | Error e -> failwith ("fleet sqldb: " ^ e ^ " in " ^ stmt)
      in
      exec "CREATE TABLE kv (k, v)";
      for i = 0 to 31 do
        exec (Printf.sprintf "INSERT INTO kv VALUES ('k%d', 'seed-%s')" i (sql_pad rng 48))
      done;
      St_sql { db; next_row = 0 }

let boot_guest cfg id =
  let seed = guest_seed cfg id in
  let plan = if cfg.chaos then Some (derived_plan seed) else None in
  let sys = B.boot_veil ~npages:guest_npages ~seed ?chaos:plan () in
  let smp = Smp.bring_up sys ~nvcpus:cfg.vcpus () in
  if cfg.rings then B.enable_rings sys ();
  let kernel = sys.B.kernel in
  (* VeilS-LOG posture: audited traffic flows through VeilMon, so the
     fleet exercises the monitor path and the protected log per guest *)
  Guest_kernel.Audit.set_rules (Kern.audit kernel)
    (match cfg.workload with
    | Http | Memcached -> [ S.Sendto ]
    (* the pager opens its file once at open_db — per-statement traffic
       is pread/pwrite/fsync, so audit those *)
    | Sqldb -> [ S.Pread64; S.Pwrite64; S.Fsync ]);
  Kern.set_audit_protection kernel true;
  let env = mk_env kernel (Kern.spawn kernel) ~rings:cfg.rings ~seed:(seed lxor 0x5EED) in
  let cli = mk_env kernel (Kern.spawn kernel) ~rings:cfg.rings ~seed:(seed lxor 0xC11) in
  let rng = Arrival.make ~seed:cfg.seed ~stream:(id + 1) cfg.process in
  let state = setup_workload cfg env cli rng in
  let reg = sys.B.platform.P.metrics in
  let g =
    {
      g_id = id;
      g_seed = seed;
      g_sys = sys;
      g_smp = smp;
      g_env = env;
      g_cli = cli;
      g_rng = rng;
      g_state = state;
      g_plan = plan;
      g_lat = M.histogram reg "fleet.sojourn_cycles";
      g_svc = M.histogram reg "fleet.service_cycles";
      g_reqs = M.counter reg "fleet.requests";
      g_lanes = Array.make cfg.vcpus 0;
      g_journal = Buffer.create 256;
      g_served = 0;
      g_blocked = 0;
      g_hostile = cfg.hostile = Some id;
    }
  in
  (* Serving window starts here: boot, AP bring-up and workload setup
     must not pollute the serialized-monitor ledger or the pulse
     timeline. *)
  Veil_core.Monitor.reset_wait_ledger sys.B.mon;
  (match cfg.pulse with
  | Some interval -> Obs.Pulse.arm sys.B.platform.P.pulse ~interval ~now:(V.rdtsc (Smp.vcpu smp 0))
  | None -> ());
  g

(* --- request execution --- *)

let serve_http g server port =
  let sz = Arrival.pareto_size g.g_rng ~xm:1024 ~alpha:1.3 ~cap:16384 in
  let idx = http_file_of_size sz in
  let serve () = ignore (Http.serve_pending g.g_env server) in
  match Http.client_get g.g_cli ~serve ~port ~path:(Printf.sprintf "/file%d.html" idx) with
  | Some body when Bytes.length body = http_sizes.(idx) -> ()
  | Some _ -> failwith "fleet http: short body"
  | None -> failwith "fleet http: no response"

let serve_mc g store conn server_conn =
  let key = Printf.sprintf "key%d" (Arrival.uniform g.g_rng 64) in
  if Arrival.uniform g.g_rng 10 = 0 then begin
    let sz = Arrival.pareto_size g.g_rng ~xm:64 ~alpha:1.3 ~cap:4096 in
    ignore (Env.send g.g_cli conn (Bytes.of_string (Printf.sprintf "set %s %d\n" key sz)));
    mc_serve g.g_env store server_conn;
    ignore (Env.recv g.g_cli conn 256)
  end
  else begin
    ignore (Env.send g.g_cli conn (Bytes.of_string (Printf.sprintf "get %s\n" key)));
    mc_serve g.g_env store server_conn;
    ignore (Env.recv g.g_cli conn 65536)
  end

let serve_sql g (st : wl_state) =
  match st with
  | St_sql s ->
      let stmt =
        if Arrival.uniform g.g_rng 10 = 0 then begin
          let row = s.next_row in
          s.next_row <- row + 1;
          (* rows are capped at 64 bytes by the engine; keep key + pad
             under it while still drawing a heavy-tailed spread *)
          let pad = Arrival.pareto_size g.g_rng ~xm:8 ~alpha:1.3 ~cap:40 in
          Printf.sprintf "INSERT INTO kv VALUES ('n%d', '%s')" row (sql_pad g.g_rng pad)
        end
        else Printf.sprintf "SELECT v FROM kv WHERE k = 'k%d'" (Arrival.uniform g.g_rng 32)
      in
      (match Sqldb.exec s.db stmt with
      | Ok _ -> ()
      | Error e -> failwith ("fleet sqldb: " ^ e));
      (* per-statement durability: flush dirty pages and fsync — the
         pager otherwise serves the whole working set from cache and a
         request would generate no audited I/O at all *)
      Sqldb.checkpoint s.db
  | _ -> assert false

(* Compromised-kernel probe fired alongside the hostile guest's own
   traffic: a service request whose destination pointer aims into
   VeilMon memory (Table 1, malicious OS request pointers, at fleet
   scope).  The sanitizer must refuse; nothing here may halt the
   guest mid-run. *)
let hostile_request_probe g =
  let sys = g.g_sys in
  (* [.lo + 2]: the heap's first frame doubles as a shared mailbox
     (same offset atk_read_mon uses) — aim past it at private pages *)
  let evil_dest = T.gpa_of_gpfn (sys.B.layout.L.mon_heap.L.lo + 2) in
  match
    Veil_core.Monitor.os_call sys.B.mon (Kern.vcpu sys.B.kernel)
      (Veil_core.Idcb.R_log_fetch { dest_gpa = evil_dest; max = 4096 })
  with
  | Veil_core.Idcb.Resp_error _ -> g.g_blocked <- g.g_blocked + 1
  | _ -> () (* unblocked: the count stays short and the oracle fails the run *)

(* Final probe, after every report datum is read: a direct read of
   VeilMon's heap through the compromised kernel's arbitrary-read
   gadget — must fault (#NPF halts the CVM, which is why it runs
   last). *)
let hostile_npf_probe g =
  try
    ignore
      (P.read g.g_sys.B.platform g.g_sys.B.vcpu
         (T.gpa_of_gpfn (g.g_sys.B.layout.L.mon_heap.L.lo + 2)) 16);
    false
  with T.Npf _ | T.Cvm_halted _ -> true

let serve_measured cfg g =
  let lane = g.g_served mod cfg.vcpus in
  let vcpu = Smp.vcpu g.g_smp lane in
  Kern.set_vcpu g.g_sys.B.kernel vcpu;
  let before = C.total vcpu.V.counter in
  (match g.g_state with
  | St_http { server; port } -> serve_http g server port
  | St_mc { store; conn; server_conn } -> serve_mc g store conn server_conn
  | St_sql _ as st -> serve_sql g st);
  if g.g_hostile then hostile_request_probe g;
  let svc = C.total vcpu.V.counter - before in
  g.g_served <- g.g_served + 1;
  Buffer.add_char g.g_journal (Char.chr (Char.code '0' + lane));
  M.observe g.g_svc svc;
  M.incr g.g_reqs;
  (lane, svc)

(* --- teardown / verification --- *)

(* Retrieve the protected log over the attested channel.  The fleet
   teardown path starts with *no* session (or a stale one after a
   guest restart): the first fetch fails with the typed, retryable
   [Disconnected], and only then do we re-attest and retry — the
   reconnect loop the bare-string error made impossible to write
   soundly. *)
let fetch_logs_retry (sys : B.veil_system) =
  let att = sys.B.platform.P.attestation in
  let user =
    Veil_core.Channel.create (Veil_crypto.Rng.create 5)
      ~platform_public:(Sevsnp.Attestation.platform_public_key att)
      ~expected_launch:(Sevsnp.Attestation.launch_measurement att)
  in
  let rec go retries =
    match Veil_core.Channel.fetch_logs user sys.B.slog sys.B.vcpu with
    | Ok lines -> Some lines
    | Error e when Veil_core.Channel.retryable e && retries > 0 -> (
        match Veil_core.Channel.connect user sys.B.mon sys.B.vcpu with
        | Ok () -> go (retries - 1)
        | Error _ -> None)
    | Error _ -> None
  in
  go 1

let digest_state g =
  let buf = Buffer.create 512 in
  (match g.g_state with
  | St_http { server; _ } ->
      Buffer.add_string buf (Printf.sprintf "http served=%d" (Http.requests_served server));
      Array.iteri
        (fun i _ ->
          Buffer.add_string buf
            (Printf.sprintf " f%d=%d" i
               (Env.stat_size g.g_cli (Printf.sprintf "/srv/www/file%d.html" i))))
        http_sizes
  | St_mc { store; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "mc entries=%d bytes=%d hits=%d misses=%d evictions=%d"
           (Mcache.entries store) (Mcache.bytes_used store) (Mcache.hits store)
           (Mcache.misses store) (Mcache.evictions store));
      for i = 0 to 63 do
        match Mcache.get store (Printf.sprintf "key%d" i) with
        | Some v -> Buffer.add_string buf (hex (Veil_crypto.Sha256.digest_string (Bytes.to_string v)))
        | None -> Buffer.add_string buf "-"
      done
  | St_sql { db; _ } -> (
      (match Sqldb.row_count db "kv" with
      | Ok n -> Buffer.add_string buf (Printf.sprintf "sql rows=%d" n)
      | Error e -> Buffer.add_string buf ("sql err=" ^ e));
      match Sqldb.exec db "SELECT * FROM kv" with
      | Ok (Sqldb.Rows rows) ->
          List.iter (fun row -> List.iter (fun v -> Buffer.add_string buf ("|" ^ v)) row) rows
      | Ok Sqldb.Done -> ()
      | Error e -> Buffer.add_string buf ("sql err=" ^ e)));
  sha_hex (Buffer.contents buf)

let finish cfg g =
  let sys = g.g_sys in
  Kern.set_vcpu sys.B.kernel sys.B.vcpu;
  (* window barrier: deferred ring traffic is part of the serving
     window — land it before the ledger and counters are read *)
  if cfg.rings then B.flush_rings sys;
  let wait = Veil_core.Monitor.wait_stats sys.B.mon in
  (match cfg.pulse with
  | Some _ ->
      let pu = sys.B.platform.P.pulse in
      let now =
        Array.init cfg.vcpus (fun i -> V.rdtsc (Smp.vcpu g.g_smp i)) |> Array.fold_left max 0
      in
      Obs.Pulse.flush pu ~now;
      Obs.Pulse.disarm pu;
      ignore (B.anchor_pulse sys)
  | None -> ());
  let slog_lines = Veil_core.Slog.read_all sys.B.slog in
  let slog_ok =
    Veil_core.Slog.verify_chain ~lines:slog_lines ~digest:(Veil_core.Slog.chain_digest sys.B.slog)
  in
  let log_lines = match fetch_logs_retry sys with Some l -> List.length l | None -> -1 in
  let data_digest = digest_state g in
  let hist_digest = sha_hex (M.dump sys.B.platform.P.metrics) in
  if g.g_hostile && hostile_npf_probe g then g.g_blocked <- g.g_blocked + 1;
  {
    gr_id = g.g_id;
    gr_seed = g.g_seed;
    gr_requests = M.value g.g_reqs;
    gr_p50 = M.percentile g.g_lat 50.0;
    gr_p99 = M.percentile g.g_lat 99.0;
    gr_p999 = M.percentile g.g_lat 99.9;
    gr_mean_svc = M.mean g.g_svc;
    gr_wait = wait;
    gr_journal = Buffer.contents g.g_journal;
    gr_slog_ok = slog_ok;
    gr_log_lines = log_lines;
    gr_data_digest = data_digest;
    gr_hist_digest = hist_digest;
    gr_blocked = g.g_blocked;
    gr_hostile = g.g_hostile;
    gr_chaos_hits = (match g.g_plan with Some p -> FP.total_hits p | None -> 0);
  }

(* --- the drive loop --- *)

let pick_guest cfg guests rr =
  match cfg.lb with
  | Round_robin ->
      let i = !rr mod Array.length guests in
      incr rr;
      i
  | Least_loaded ->
      let best = ref 0 and best_free = ref max_int in
      Array.iteri
        (fun i g ->
          let free = Array.fold_left min max_int g.g_lanes in
          if free < !best_free then begin
            best := i;
            best_free := free
          end)
        guests;
      !best

let validate cfg =
  if cfg.guests < 1 then invalid_arg "Fleet.run: guests >= 1";
  if cfg.vcpus < 1 || cfg.vcpus > 8 then invalid_arg "Fleet.run: vcpus in 1..8";
  if cfg.requests < 1 then invalid_arg "Fleet.run: requests >= 1"

let run cfg =
  validate cfg;
  let guests = Array.init cfg.guests (fun i -> boot_guest cfg (cfg.first_guest + i)) in
  let arr = Arrival.make ~seed:cfg.seed ~stream:0 cfg.process in
  let lbj = Buffer.create cfg.requests in
  (match cfg.mode with
  | Open_loop ->
      let clock = ref 0 and rr = ref 0 in
      for _ = 1 to cfg.requests do
        clock := !clock + Arrival.next_gap arr;
        let g = guests.(pick_guest cfg guests rr) in
        Buffer.add_char lbj (digit36 g.g_id);
        let lane, svc = serve_measured cfg g in
        let start = max !clock g.g_lanes.(lane) in
        g.g_lanes.(lane) <- start + svc;
        M.observe g.g_lat (start + svc - !clock)
      done
  | Closed_loop ->
      (* one back-to-back client per lane: the next request is only
         offered when the previous one finished, so reported latency
         is pure service time — the waiting that open-loop arrivals
         would have suffered is coordinately omitted *)
      for i = 0 to cfg.requests - 1 do
        let g = guests.(i mod cfg.guests) in
        Buffer.add_char lbj (digit36 g.g_id);
        let lane, svc = serve_measured cfg g in
        g.g_lanes.(lane) <- g.g_lanes.(lane) + svc;
        M.observe g.g_lat svc
      done);
  let reports = Array.map (finish cfg) guests in
  let wall =
    Array.fold_left
      (fun acc g -> Array.fold_left max acc g.g_lanes)
      0 guests
  in
  let merged = M.merge (Array.to_list (Array.map (fun g -> g.g_sys.B.platform.P.metrics) guests)) in
  let mlat =
    match M.find merged "fleet.sojourn_cycles" with
    | Some (M.Histogram h) -> h
    | _ -> failwith "Fleet.run: merged registry lost the sojourn histogram"
  in
  {
    r_guests = reports;
    r_mode = cfg.mode;
    r_workload = cfg.workload;
    r_vcpus = cfg.vcpus;
    r_requests = cfg.requests;
    r_wall_cycles = wall;
    r_throughput =
      (if wall <= 0 then 0.0 else float_of_int cfg.requests /. C.seconds_of_cycles wall);
    r_offered = Arrival.mean_rate cfg.process;
    r_p50 = M.percentile mlat 50.0;
    r_p99 = M.percentile mlat 99.0;
    r_p999 = M.percentile mlat 99.9;
    r_mean = M.mean mlat;
    r_merged_digest = sha_hex (M.dump merged);
    r_lb_journal = Buffer.contents lbj;
  }

let calibrate cfg =
  let probe =
    {
      cfg with
      mode = Closed_loop;
      requests = min 128 (max 32 (8 * cfg.guests * cfg.vcpus));
      chaos = false;
      pulse = None;
      hostile = None;
    }
  in
  let r = run probe in
  if r.r_mean <= 0.0 then float_of_int C.freq_hz else r.r_mean

let rate_for cfg ~utilization ~mean_service_cycles =
  if mean_service_cycles <= 0.0 then 1.0
  else
    utilization *. float_of_int (cfg.guests * cfg.vcpus) *. float_of_int C.freq_hz
    /. mean_service_cycles

let report_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"mode\":\"%s\",\"workload\":\"%s\",\"vcpus\":%d,\"requests\":%d,\"wall_cycles\":%d,\
        \"throughput_rps\":%.1f,\"offered_rps\":%.1f,\"p50\":%d,\"p99\":%d,\"p999\":%d,\
        \"mean\":%.1f,\"merged_digest\":\"%s\",\"guests\":["
       (match r.r_mode with Open_loop -> "open" | Closed_loop -> "closed")
       (workload_name r.r_workload) r.r_vcpus r.r_requests r.r_wall_cycles r.r_throughput
       r.r_offered r.r_p50 r.r_p99 r.r_p999 r.r_mean r.r_merged_digest);
  Array.iteri
    (fun i (g : guest_report) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"seed\":%d,\"requests\":%d,\"p50\":%d,\"p99\":%d,\"p999\":%d,\
            \"mean_svc\":%.1f,\"ledger_entries\":%d,\"ledger_queued\":%d,\"slog_ok\":%b,\
            \"log_lines\":%d,\"data_digest\":\"%s\",\"hist_digest\":\"%s\",\"hostile\":%b,\
            \"blocked\":%d,\"chaos_hits\":%d,\"journal\":\"%s\"}"
           g.gr_id g.gr_seed g.gr_requests g.gr_p50 g.gr_p99 g.gr_p999 g.gr_mean_svc
           g.gr_wait.Veil_core.Monitor.ws_entries g.gr_wait.Veil_core.Monitor.ws_queued_cycles
           g.gr_slog_ok g.gr_log_lines g.gr_data_digest g.gr_hist_digest g.gr_hostile
           g.gr_blocked g.gr_chaos_hits
           (M.json_escape g.gr_journal)))
    r.r_guests;
  Buffer.add_string buf "]}";
  Buffer.contents buf
