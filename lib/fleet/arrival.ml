(* Open-loop arrival generation (see the .mli).  Everything is
   immediate-int or local-float arithmetic; one [t] per stream, no
   allocation per draw. *)

module C = Sevsnp.Cycles

let mask = max_int (* 63-bit state/output space, like the chaos PRNG *)

(* Domain tag: ASCII "ARRIVAL" in the low 56 bits.  The chaos family
   mixes [seed * 0x9E3779B1 lxor (seed lsr 16) lxor 0x6A09E667]
   (lib/chaos/fault_plan.ml); the arrival family must stay independent
   of it under *identical* seeds, so it goes through a SplitMix-style
   finalizer keyed by this tag instead.  Do not "unify" the two mixes:
   the whole point is that they differ. *)
let domain_arrival = 0x41525249_56414C

(* 63-bit truncations of the SplitMix64 constants; the truncation only
   has to keep the mix a bijection-ish scramble, not match the 64-bit
   reference outputs. *)
let gamma = 0x1E3779B97F4A7C15
let mix_m1 = 0x3F58476D1CE4E5B9
let mix_m2 = 0x14D049BB133111EB

let finalize z =
  let z = (z lxor (z lsr 30)) * mix_m1 land mask in
  let z = (z lxor (z lsr 27)) * mix_m2 land mask in
  z lxor (z lsr 31)

type process =
  | Poisson of { rate : float }
  | Mmpp of { low : float; high : float; dwell_low : float; dwell_high : float }

let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { low; high; dwell_low; dwell_high } ->
      (* time-weighted: the process spends dwell_low in the low state
         for every dwell_high in the high state *)
      ((low *. dwell_low) +. (high *. dwell_high)) /. (dwell_low +. dwell_high)

type t = {
  mutable st : int;
  proc : process;
  mutable high_state : bool;
  mutable dwell_left : float; (* cycles remaining in the current MMPP state *)
}

(* State transition is the in-repo 13/7/17 xorshift; the *output* adds
   an xorshift*-style odd multiplier the fault-plan stream lacks, so
   even a state collision with the chaos family would not replay its
   outputs. *)
let star = 0x2545F4914F6CDD1D

let draw t =
  let x = t.st in
  let x = x lxor ((x lsl 13) land mask) in
  let x = x lxor (x lsr 7) in
  let x = x lxor ((x lsl 17) land mask) in
  t.st <- x;
  x * star land mask

let uniform t n = if n <= 0 then 0 else draw t mod n

(* u in (0, 1]: 53 uniform bits (draws carry 62 — OCaml ints are
   63-bit signed), never 0 so log u is finite. *)
let u01 t = float_of_int ((draw t lsr 9) + 1) /. 9007199254740993.0

let exp_draw t mean = -.mean *. log (u01 t)

let freq = float_of_int C.freq_hz

let make ~seed ~stream proc =
  let z = ((seed lxor domain_arrival) + (((stream + 1) * gamma) land mask)) land mask in
  let t =
    { st = finalize z lor 1 (* xorshift fixes 0; [lor 1] keeps adversarial seeds live *);
      proc;
      high_state = false;
      dwell_left = 0.0 }
  in
  (match proc with
  | Poisson _ -> ()
  | Mmpp { dwell_low; _ } -> t.dwell_left <- exp_draw t (dwell_low *. freq));
  t

let rec gap_cycles t =
  match t.proc with
  | Poisson { rate } -> exp_draw t (freq /. rate)
  | Mmpp m ->
      let rate = if t.high_state then m.high else m.low in
      let g = exp_draw t (freq /. rate) in
      if g <= t.dwell_left then begin
        t.dwell_left <- t.dwell_left -. g;
        g
      end
      else begin
        (* the gap straddles a state change: advance to the boundary,
           flip, and redraw memorylessly under the new rate *)
        let consumed = t.dwell_left in
        t.high_state <- not t.high_state;
        let dwell_mean = if t.high_state then m.dwell_high else m.dwell_low in
        t.dwell_left <- exp_draw t (dwell_mean *. freq);
        consumed +. gap_cycles t
      end

let next_gap t = max 0 (int_of_float (gap_cycles t))

let pareto_size t ~xm ~alpha ~cap =
  let x = float_of_int xm /. (u01 t ** (1.0 /. alpha)) in
  if x >= float_of_int cap then cap else max xm (int_of_float x)
