(** Veil-Fleet: N full CVM platform instances behind a simulated load
    balancer, driven by open-loop traffic (ROADMAP item 2 — the
    millions-of-users shape: confidential VMs provisioned as cattle).

    Every guest is a complete, isolated platform — its own RMP/arena,
    VeilMon, metrics registry, pulse sampler, and (optionally) a chaos
    plan derived from its per-guest seed.  A dispatcher assigns each
    arrival to a guest, and within the guest to a service lane (one
    per VCPU); the request then *actually executes* in that guest —
    http GET over the socket path, memcached command over a
    connection, or a SQL statement through the B-tree pager — with the
    lane's VCPU cycle counter measuring true service time.  Sojourn
    (reported latency) is queueing delay under the open-loop clock
    plus that measured service time.

    Dispatch is deliberately round-robin at both levels by default:
    a guest's execution trace then depends only on its own seed and
    its request count, never on co-tenant timing — the property the
    cross-tenant oracle and the wait-ledger isolation test pin down.

    Fleet-aggregate percentiles come from {!Obs.Metrics.merge} over
    the guests' registries (bucket-wise sums — no per-guest
    counter-reset semantics; see DESIGN.md §15). *)

module Arrival = Arrival
(** Re-export: consumers build a {!config}'s arrival process as
    [Fleet.Arrival.Poisson ...] without reaching into the library. *)

type workload = Http | Memcached | Sqldb

val workload_name : workload -> string
val workload_of_name : string -> workload option

type mode = Open_loop | Closed_loop

type lb = Round_robin | Least_loaded

type config = {
  guests : int;  (** platform instances (>= 1) *)
  vcpus : int;  (** service lanes per guest (1..8) *)
  seed : int;  (** operator seed; per-guest seeds derive from it *)
  requests : int;  (** total arrivals across the fleet *)
  workload : workload;
  process : Arrival.process;
  mode : mode;
      (** [Open_loop] queues arrivals against busy lanes (sojourn =
          wait + service); [Closed_loop] runs one back-to-back client
          per lane, so reported latency is service only — the
          coordinated-omission comparison baseline. *)
  lb : lb;
  rings : bool;  (** Veil-Ring batched submission rings *)
  chaos : bool;
      (** arm a per-guest fault plan (recoverable sites) derived from
          the guest seed *)
  pulse : int option;  (** Veil-Pulse sampling interval in cycles *)
  hostile : int option;
      (** index of a guest whose (compromised) kernel fires
          cross-tenant probes alongside its traffic — all must be
          blocked, and no other guest's numbers may move *)
  first_guest : int;
      (** id of the first guest (default 0).  Guest identity — seed,
          content stream, chaos plan — is a function of the id alone,
          so a 1-guest run with [first_guest = g] boots exactly guest
          [g] of a larger fleet (the wait-ledger isolation test relies
          on this). *)
}

val default : config
(** 4 guests x 4 VCPUs, 400 http requests, Poisson at 60% of a
    calibrated single-lane service rate, open loop, round-robin,
    seed 97. *)

val guest_seed : config -> int -> int
(** The derived per-guest boot seed for guest id [i]. *)

type guest_report = {
  gr_id : int;
  gr_seed : int;
  gr_requests : int;
  gr_p50 : int;  (** sojourn percentiles, cycles *)
  gr_p99 : int;
  gr_p999 : int;
  gr_mean_svc : float;  (** mean measured service cycles *)
  gr_wait : Veil_core.Monitor.wait_stats;
      (** this guest's serialized-monitor entry ledger over the
          serving window *)
  gr_journal : string;  (** lane digit per request served, in order *)
  gr_slog_ok : bool;  (** VeilS-LOG hash chain verified *)
  gr_log_lines : int;
      (** protected log lines fetched over the attested channel
          (exercises the typed reconnect-and-retry path) *)
  gr_data_digest : string;  (** workload-state digest (hex) *)
  gr_hist_digest : string;  (** digest of this guest's registry dump *)
  gr_blocked : int;  (** hostile probes stopped (0 for benign guests) *)
  gr_hostile : bool;
  gr_chaos_hits : int;
}

type report = {
  r_guests : guest_report array;
  r_mode : mode;
  r_workload : workload;
  r_vcpus : int;
  r_requests : int;
  r_wall_cycles : int;
  r_throughput : float;  (** requests/second achieved *)
  r_offered : float;  (** requests/second offered (arrival process mean) *)
  r_p50 : int;  (** fleet-aggregate sojourn percentiles from the merged histogram *)
  r_p99 : int;
  r_p999 : int;
  r_mean : float;
  r_merged_digest : string;
      (** digest of the merged fleet registry — replay identity in one
          string *)
  r_lb_journal : string;  (** guest digit per arrival, in order *)
}

val run : config -> report
(** Boot the fleet, drive the traffic, tear down, and report.
    Deterministic: identical [config] -> identical report (journals,
    digests, and every number). *)

val calibrate : config -> float
(** Mean service cycles per request of this workload at these
    settings, measured on a short closed-loop probe fleet (separate
    instances; does not disturb a subsequent {!run}). *)

val rate_for : config -> utilization:float -> mean_service_cycles:float -> float
(** The offered rate (requests/second) that loads the whole fleet
    ([guests * vcpus] lanes) to the given utilization, e.g. 0.6 for a
    comfortably stable open loop, > 1.0 to demonstrate unbounded
    open-loop queue growth. *)

val report_json : report -> string
