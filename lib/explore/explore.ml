(* Veil-Explore (ISSUE 9): exhaustive interleaving search over the §5
   monitor protocols.

   The deterministic SMP interleaver makes every scheduling decision a
   pure function of the schedule prefix, so the schedule *tree* of a
   bounded scenario can be enumerated without state capture: re-run the
   scenario from boot, replay a journal prefix byte-for-byte, take the
   first runnable VCPU beyond it, and record at every decision the
   runnable set the run did NOT take.  Depth-first backtracking over
   those untaken alternatives visits every interleaving of the scenario
   (budget permitting), and the chaos invariant classification plus the
   cross-branch invariants below are re-checked on each branch:

   - slog hash chain intact at end of branch;
   - per-VCPU IDCB sequence monotonicity at every schedule point;
   - at most one VCPU in Dom_MON at every schedule point (monitor
     sections never yield);
   - ring replay cache consistency (a duplicated batch relay answers
     from cache without re-executing).

   Sleep-set pruning (DPOR-style): when the alternatives of a branch
   point are explored left to right, an already-explored sibling [a]
   need not be re-explored below a later sibling [b] as long as only
   steps *independent* of [a] have run since — the [b..a] interleaving
   commutes with the [a..b] one already covered.  Independence is
   approximated by visibility: a timeslice that moved none of the
   shared-protocol counters (monitor os_calls/delegations/rejections,
   hypervisor switches/relays/IO/page-state, vTPM extends, slog
   appends, kernel syscalls, replay suppressions) touched only its own
   coroutine state, and commutes with any step of another VCPU.  Any
   visible step conservatively clears the sleep set.  See DESIGN.md
   §14 for the soundness argument and its limits.

   On violation the failing schedule is shrunk to a minimal journal by
   greedy prefix/step deletion with replay confirmation, and emitted as
   a one-line artifact `veilctl explore --replay` re-executes
   byte-for-byte. *)

module B = Veil_core.Boot
module M = Veil_core.Monitor
module Smp = Veil_core.Smp
module Pd = Veil_core.Privdom
module Slog = Veil_core.Slog
module Vtpm = Veil_core.Vtpm
module Idcb = Veil_core.Idcb
module Hv = Hypervisor.Hv
module I = Hypervisor.Hv.Interleave
module K = Guest_kernel.Kernel
module Gs = Guest_kernel.Sched
module Hooks = Guest_kernel.Hooks
module P = Sevsnp.Platform
module V = Sevsnp.Vcpu
module T = Sevsnp.Types
module FP = Chaos.Fault_plan
module O = Chaos_outcome
module ISet = Set.Make (Int)

(* --- configuration ------------------------------------------------- *)

type config = {
  cf_budget : int;  (** max branch executions per scenario (the DFS budget) *)
  cf_max_steps : int;  (** interleaver steps per branch before the schedule watchdog *)
  cf_watchdog : int;  (** fault-plan world-exit budget per branch *)
  cf_seed : int;  (** fault-plan seed (scenarios with chaos sites) *)
}

let default_config =
  { cf_budget = 200; cf_max_steps = 4096; cf_watchdog = 2_000_000; cf_seed = 11 }

(* Guest boot parameters are FIXED across branches: all branch-to-branch
   variation comes from the schedule journal, which is what makes a
   minimized journal replay byte-identical. *)
let boot_npages = 2048
let boot_seed = 13

(* --- scenarios ----------------------------------------------------- *)

type scenario = {
  sc_name : string;
  sc_desc : string;
  sc_nvcpus : int;
  sc_weakened : bool;  (** test-only weakened guard: a violation is the expected outcome *)
  sc_sites : (FP.site * float * int option) list;  (** (site, prob, max_hits) armed per branch *)
  sc_body : B.veil_system -> Smp.t -> unit -> unit;
      (** post-bring-up: register the workers; the returned thunk is the
          end-of-branch check (raise {!Chaos_outcome.Fail} on violation) *)
}

let yield () = Gs.yield ()
let cur_vcpu sys = K.vcpu sys.B.kernel

(* (a) AP bring-up racing a domain switch. *)
let sc_ap_race =
  {
    sc_name = "ap-race";
    sc_desc = "AP bring-up (R_vcpu_boot for VCPU 2) racing Dom_MON round-trip switches";
    sc_nvcpus = 2;
    sc_weakened = false;
    sc_sites = [];
    sc_body =
      (fun sys smp ->
        Smp.spawn ~vcpu:0 smp ~name:"ap-boot" (fun () ->
            yield ();
            (match (K.hooks sys.B.kernel).Hooks.h_vcpu_boot ~vcpu_id:2 with
            | Ok () -> ()
            | Error e -> O.fail (O.Degraded ("AP bring-up refused: " ^ e)));
            yield ());
        Smp.spawn ~vcpu:1 smp ~name:"switcher" (fun () ->
            for _ = 1 to 3 do
              let vc = cur_vcpu sys in
              M.domain_switch sys.B.mon vc ~target:Pd.Mon;
              M.domain_switch sys.B.mon vc ~target:Pd.Unt;
              yield ()
            done);
        fun () ->
          let n = P.vcpu_count sys.B.platform in
          if n <> 3 then O.corrupt "AP bring-up left %d VCPUs (expected 3)" n;
          let ap = List.nth (P.vcpus sys.B.platform) 2 in
          if ap.V.id <> 2 then O.corrupt "hot-plugged VCPU has id %d (expected 2)" ap.V.id;
          if not (T.equal_vmpl (V.vmpl ap) T.Vmpl3) then
            O.corrupt "hot-plugged AP not parked at Dom_UNT");
  }

(* (b) concurrent RMPADJUST (page-state-change delegation) + TLB
   shootdown, with a third VCPU doing local-only compute: its
   timeslices move no shared-protocol state, so they are exactly the
   commutative steps sleep-set pruning collapses. *)
let sc_rmp_shootdown =
  {
    sc_name = "rmp-shootdown";
    sc_desc = "R_pvalidate page-state flips racing distributed TLB shootdowns (3 VCPUs)";
    sc_nvcpus = 3;
    sc_weakened = false;
    sc_sites = [];
    sc_body =
      (fun sys smp ->
        let target = K.alloc_frame sys.B.kernel in
        let local_spins = ref 0 in
        Smp.spawn ~vcpu:0 smp ~name:"pvalidate" (fun () ->
            for _ = 1 to 2 do
              (match (K.hooks sys.B.kernel).Hooks.h_pvalidate ~gpfn:target ~to_private:false with
              | Ok () -> ()
              | Error e -> O.fail (O.Degraded ("pvalidate to-shared refused: " ^ e)));
              yield ();
              (match (K.hooks sys.B.kernel).Hooks.h_pvalidate ~gpfn:target ~to_private:true with
              | Ok () -> ()
              | Error e -> O.fail (O.Degraded ("pvalidate to-private refused: " ^ e)));
              yield ()
            done);
        Smp.spawn ~vcpu:1 smp ~name:"shootdown" (fun () ->
            for _ = 1 to 3 do
              P.tlb_shootdown_distributed sys.B.platform ~initiator:(cur_vcpu sys);
              yield ()
            done);
        Smp.spawn ~vcpu:2 smp ~name:"local" (fun () ->
            for _ = 1 to 2 do
              incr local_spins;
              yield ()
            done);
        fun () ->
          if Sevsnp.Rmp.state sys.B.platform.P.rmp target <> Sevsnp.Rmp.Private then
            O.corrupt "page-state flip target not private after paired flips";
          let d = (M.stats sys.B.mon).M.delegated_pvalidates in
          if d < 4 then O.corrupt "only %d pvalidate delegations reached the monitor" d;
          if !local_spins <> 2 then O.corrupt "local worker ran %d spins (expected 2)" !local_spins);
  }

(* (c) os_call replay suppression under duplicated/reordered relays. *)
let sc_oscall_replay =
  {
    sc_name = "oscall-replay";
    sc_desc = "vTPM extends under relay dup/reorder + forced duplicate IDCB relays";
    sc_nvcpus = 2;
    sc_weakened = false;
    sc_sites = [ (FP.Relay_dup, 1.0, Some 2); (FP.Relay_reorder, 1.0, Some 2) ];
    sc_body =
      (fun sys smp ->
        let extends0 = ref 0 in
        extends0 := Vtpm.extends_count sys.B.vtpm;
        Smp.spawn ~vcpu:0 smp ~name:"extender" (fun () ->
            for i = 1 to 3 do
              (match
                 M.os_call sys.B.mon (cur_vcpu sys)
                   (Idcb.R_tpm_extend
                      { pcr = 3; data = Bytes.of_string (Printf.sprintf "explore-%d" i) })
               with
              | Idcb.Resp_ok -> ()
              | Idcb.Resp_error e -> O.fail (O.Degraded ("tpm extend refused: " ^ e))
              | _ -> O.corrupt "tpm extend returned an unexpected response");
              yield ()
            done);
        Smp.spawn ~vcpu:1 smp ~name:"relayer" (fun () ->
            for _ = 1 to 2 do
              Hv.inject_interrupt sys.B.hv (cur_vcpu sys);
              yield ();
              (* A duplicated relay of VCPU 0's current IDCB sequence:
                 the monitor must answer from the replay cache without a
                 second execution. *)
              ignore (M.serve_pending sys.B.mon (Smp.vcpu smp 0));
              yield ()
            done);
        fun () ->
          let got = Vtpm.extends_count sys.B.vtpm - !extends0 in
          if got <> 3 then
            O.corrupt "vTPM extended %d times for 3 os_calls (replay suppression broken?)" got);
  }

(* (d) ring batch flush racing a synchronous os_call. *)
let sc_ring_race =
  {
    sc_name = "ring-race";
    sc_desc = "Veil-Ring batch flushes racing synchronous os_calls, plus a duplicated batch relay";
    sc_nvcpus = 2;
    sc_weakened = false;
    sc_sites = [];
    sc_body =
      (fun sys smp ->
        B.enable_rings sys ();
        let extends0 = Vtpm.extends_count sys.B.vtpm in
        let extend pcr tag i =
          Idcb.R_tpm_extend { pcr; data = Bytes.of_string (Printf.sprintf "%s-%d" tag i) }
        in
        Smp.spawn ~vcpu:0 smp ~name:"batcher" (fun () ->
            let mon = sys.B.mon in
            let ring =
              match M.ring_of mon ~vcpu_id:0 with
              | Some r -> r
              | None -> O.fail (O.Crashed "vcpu 0 has no registered ring")
            in
            for i = 1 to 2 do
              ignore (M.ring_submit mon (cur_vcpu sys) ring (extend 4 "batch-a" i));
              yield ();
              ignore (M.ring_submit mon (cur_vcpu sys) ring (extend 4 "batch-b" i));
              ignore (M.os_call_batch mon (cur_vcpu sys) ring);
              yield ()
            done);
        Smp.spawn ~vcpu:1 smp ~name:"sync-caller" (fun () ->
            for i = 1 to 2 do
              (match M.os_call sys.B.mon (cur_vcpu sys) (extend 6 "sync" i) with
              | Idcb.Resp_ok -> ()
              | Idcb.Resp_error e -> O.fail (O.Degraded ("sync extend refused: " ^ e))
              | _ -> O.corrupt "sync extend returned an unexpected response");
              yield ()
            done);
        fun () ->
          B.flush_rings sys;
          let got = Vtpm.extends_count sys.B.vtpm - extends0 in
          if got <> 6 then
            O.corrupt "vTPM extended %d times for 6 submitted requests (batch vs sync raced)" got;
          (* Ring replay cache consistency: a duplicated relay of the
             last flushed batch must answer from the cache. *)
          match M.ring_of sys.B.mon ~vcpu_id:0 with
          | None -> ()
          | Some ring ->
              let before = Vtpm.extends_count sys.B.vtpm in
              ignore (M.serve_batch sys.B.mon sys.B.vcpu ring);
              if Vtpm.extends_count sys.B.vtpm <> before then
                O.fail (O.Corrupt "duplicated ring batch relay re-executed slots"));
  }

(* TEST-ONLY weakened guard: the IDCB replay cache is disabled, so a
   replayed relay of an already-served sequence re-executes its request
   — but only on schedules where the replayer's slice lands after an
   even number of completed extends, making the counterexample
   genuinely schedule-dependent (the default first-enabled schedule
   passes). *)
let sc_weakened_replay =
  {
    sc_name = "weakened-replay";
    sc_desc = "TEST-ONLY: IDCB replay guard disabled; schedule-dependent double execution";
    sc_nvcpus = 2;
    sc_weakened = true;
    sc_sites = [];
    sc_body =
      (fun sys smp ->
        M.weaken_replay_guard_for_test sys.B.mon;
        let extends0 = Vtpm.extends_count sys.B.vtpm in
        Smp.spawn ~vcpu:0 smp ~name:"extender" (fun () ->
            for i = 1 to 3 do
              ignore
                (M.os_call sys.B.mon (cur_vcpu sys)
                   (Idcb.R_tpm_extend
                      { pcr = 5; data = Bytes.of_string (Printf.sprintf "wk-%d" i) }));
              yield ()
            done);
        Smp.spawn ~vcpu:1 smp ~name:"replayer" (fun () ->
            yield ();
            if (Vtpm.extends_count sys.B.vtpm - extends0) mod 2 = 0 then begin
              (* Replayed relay: re-post VCPU 0's current sequence and
                 re-enter the monitor on that VCPU, exactly as a
                 duplicated doorbell would.  The replay cache must
                 suppress the second execution. *)
              let vc0 = Smp.vcpu smp 0 in
              let idcb = M.idcb_of sys.B.mon ~vcpu_id:0 in
              idcb.Idcb.request <-
                Idcb.R_tpm_extend { pcr = 5; data = Bytes.of_string "forged-replay" };
              M.domain_switch sys.B.mon vc0 ~target:Pd.Mon;
              ignore (M.serve_pending sys.B.mon vc0);
              M.domain_switch sys.B.mon vc0 ~target:Pd.Unt
            end);
        fun () ->
          let got = Vtpm.extends_count sys.B.vtpm - extends0 in
          if got <> 3 then
            O.corrupt "vTPM extended %d times for 3 os_calls (replayed relay re-executed)" got);
  }

let all_scenarios = [ sc_ap_race; sc_rmp_shootdown; sc_oscall_replay; sc_ring_race ]
let weakened_scenarios = [ sc_weakened_replay ]

let find_scenario name =
  List.find_opt (fun s -> String.equal s.sc_name name) (all_scenarios @ weakened_scenarios)

(* --- one branch execution ------------------------------------------ *)

type step_info = {
  si_enabled : int list;  (* runnable set at this decision (ascending) *)
  si_chosen : int;
  mutable si_visible : bool;  (* the chosen timeslice moved shared-protocol state *)
}

type branch = {
  br_outcome : O.t;
  br_journal : string;  (* full journal, as far as the run got *)
  br_steps : step_info array;
  br_diverged : bool;  (* the prescribed prefix named a non-runnable VCPU *)
}

exception Diverged

(* Shared-protocol fingerprint: all cross-VCPU communication in the
   simulator funnels through the monitor, the hypervisor, the protected
   services or the kernel syscall layer, so a timeslice that moves none
   of these counters touched only its own coroutine's state. *)
let fingerprint (sys : B.veil_system) =
  let ms = M.stats sys.B.mon in
  let hs = Hv.stats sys.B.hv in
  let metric name = Obs.Metrics.value (Obs.Metrics.counter sys.B.platform.P.metrics name) in
  ms.M.os_calls + ms.M.delegated_pvalidates + ms.M.delegated_vcpu_boots
  + ms.M.sanitizer_rejections + hs.Hv.domain_switches + hs.Hv.io_requests
  + hs.Hv.interrupts_injected + hs.Hv.page_state_changes
  + Vtpm.extends_count sys.B.vtpm + Slog.count sys.B.slog
  + metric "kernel.syscalls"
  + metric "monitor.replays_suppressed"

(* Cross-branch invariants sampled at every schedule point. *)
let check_step_invariants (sys : B.veil_system) ~nvcpus last_seq =
  for v = 0 to nvcpus - 1 do
    let seq = (M.idcb_of sys.B.mon ~vcpu_id:v).Idcb.seq in
    if seq < last_seq.(v) then
      O.corrupt "IDCB sequence regressed on vcpu %d (%d -> %d)" v last_seq.(v) seq;
    last_seq.(v) <- seq
  done;
  let in_mon =
    List.fold_left
      (fun acc vc -> if Pd.equal (Pd.of_vmpl (V.vmpl vc)) Pd.Mon then acc + 1 else acc)
      0 (P.vcpus sys.B.platform)
  in
  if in_mon > 1 then O.corrupt "%d VCPUs in Dom_MON at a schedule point" in_mon

let run_branch cfg sc ~prefix =
  let steps_rev = ref [] in
  let nsteps = ref 0 in
  let sys_ref = ref None in
  let last_fp = ref 0 in
  let last_seq = Array.make sc.sc_nvcpus min_int in
  let diverged = ref false in
  let journal = ref "" in
  let guide en =
    (match !sys_ref with
    | None -> ()
    | Some sys ->
        let fp = fingerprint sys in
        (match !steps_rev with
        | prev :: _ -> prev.si_visible <- fp <> !last_fp
        | [] -> ());
        last_fp := fp;
        check_step_invariants sys ~nvcpus:sc.sc_nvcpus last_seq);
    let i = !nsteps in
    let choice =
      if i < String.length prefix then begin
        let c = Char.code prefix.[i] - Char.code '0' in
        if not (List.mem c en) then raise Diverged;
        c
      end
      else List.hd en
    in
    (* the last step's visibility is never resolved: stay conservative *)
    steps_rev := { si_enabled = en; si_chosen = choice; si_visible = true } :: !steps_rev;
    incr nsteps;
    choice
  in
  let body () =
    let plan = FP.create ~max_steps:cfg.cf_watchdog ~seed:cfg.cf_seed () in
    List.iter (fun (s, prob, max_hits) -> FP.set_site plan s ?max_hits ~prob ()) sc.sc_sites;
    let saved = !B.default_chaos in
    B.default_chaos := (fun () -> Some plan);
    Fun.protect
      ~finally:(fun () -> B.default_chaos := saved)
      (fun () ->
        let sys = B.boot_veil ~npages:boot_npages ~seed:boot_seed () in
        let smp = Smp.bring_up ~policy:(I.Guided guide) sys ~nvcpus:sc.sc_nvcpus () in
        sys_ref := Some sys;
        last_fp := fingerprint sys;
        let final = sc.sc_body sys smp in
        Fun.protect
          ~finally:(fun () -> journal := Smp.journal smp)
          (fun () ->
            try Smp.run ~max_steps:cfg.cf_max_steps smp
            with Gs.Deadlock names ->
              O.fail (O.Watchdog ("schedule deadlock: " ^ String.concat "," names)));
        final ();
        if
          not
            (Slog.verify_chain
               ~lines:(Slog.read_all sys.B.slog)
               ~digest:(Slog.chain_digest sys.B.slog))
        then O.fail (O.Corrupt "slog hash chain does not verify at end of branch");
        O.Passed)
  in
  let outcome =
    O.classify (fun () ->
        try body ()
        with Diverged ->
          diverged := true;
          O.Halted "schedule prefix diverged (journal does not fit this scenario)")
  in
  {
    br_outcome = outcome;
    br_journal = !journal;
    br_steps = Array.of_list (List.rev !steps_rev);
    br_diverged = !diverged;
  }

(* --- depth-first schedule-tree enumeration ------------------------- *)

type stats = {
  mutable st_runs : int;  (* branch executions, root included *)
  mutable st_branch_points : int;  (* decisions with >= 2 runnable VCPUs *)
  mutable st_branched : int;  (* untaken alternatives actually executed *)
  mutable st_pruned : int;  (* alternatives skipped by sleep sets *)
  mutable st_deferred : int;  (* alternatives beyond the branch budget (frontier) *)
  mutable st_max_depth : int;
}

exception Found of branch

let digit v = String.make 1 (Char.chr (Char.code '0' + v))

let rec expand cfg sc st ~sleep ~from r =
  let n = Array.length r.br_steps in
  if n > st.st_max_depth then st.st_max_depth <- n;
  let sleep = ref sleep in
  for i = from to n - 1 do
    let si = r.br_steps.(i) in
    (match si.si_enabled with
    | _ :: _ :: _ -> st.st_branch_points <- st.st_branch_points + 1
    | _ -> ());
    let explored = ref (ISet.singleton si.si_chosen) in
    List.iter
      (fun a ->
        if a <> si.si_chosen then
          if ISet.mem a !sleep then st.st_pruned <- st.st_pruned + 1
          else if st.st_runs >= cfg.cf_budget then st.st_deferred <- st.st_deferred + 1
          else begin
            let p' = String.sub r.br_journal 0 i ^ digit a in
            let r' = run_branch cfg sc ~prefix:p' in
            st.st_runs <- st.st_runs + 1;
            st.st_branched <- st.st_branched + 1;
            if r'.br_diverged then
              raise
                (Found
                   {
                     r' with
                     br_outcome =
                       O.Crashed "schedule tree diverged: identical prefix, different run";
                   });
            if not (O.ok r'.br_outcome) then raise (Found r');
            (* sleep set for the subtree below alternative [a]: the
               siblings already covered survive only if [a]'s own step
               was invisible (independent of everything) *)
            let a_visible =
              if i < Array.length r'.br_steps then r'.br_steps.(i).si_visible else true
            in
            let child_sleep =
              if a_visible then ISet.empty else ISet.remove a (ISet.union !sleep !explored)
            in
            expand cfg sc st ~sleep:child_sleep ~from:(i + 1) r';
            explored := ISet.add a !explored
          end)
      si.si_enabled;
    (* walk on along [r]: the taken step wakes sleepers it depends on *)
    sleep := (if si.si_visible then ISet.empty else ISet.remove si.si_chosen !sleep)
  done

(* --- counterexample minimization ----------------------------------- *)

let minimize cfg sc ~cls journal0 =
  let runs = ref 0 in
  let try_ j =
    incr runs;
    let r = run_branch cfg sc ~prefix:j in
    if (not r.br_diverged) && O.same_class r.br_outcome cls then Some r else None
  in
  let j = ref journal0 in
  (* greedy prefix shrink: halve while the violation reproduces ... *)
  let halving = ref true in
  while !halving && String.length !j > 0 do
    let half = String.sub !j 0 (String.length !j / 2) in
    match try_ half with Some _ -> j := half | None -> halving := false
  done;
  (* ... then drop trailing steps one at a time ... *)
  let trimming = ref true in
  while !trimming && String.length !j > 0 do
    let cand = String.sub !j 0 (String.length !j - 1) in
    match try_ cand with Some _ -> j := cand | None -> trimming := false
  done;
  (* ... then greedy single-step deletion anywhere *)
  let i = ref 0 in
  while !i < String.length !j do
    let cand = String.sub !j 0 !i ^ String.sub !j (!i + 1) (String.length !j - !i - 1) in
    match try_ cand with Some _ -> j := cand | None -> incr i
  done;
  (* replay confirmation of the final journal *)
  match try_ !j with Some r -> Some (!j, r, !runs) | None -> None

(* --- reports ------------------------------------------------------- *)

type counterexample = {
  cx_scenario : string;
  cx_class : string;  (* stable class token ("corrupt", "watchdog", ...) *)
  cx_detail : string;
  cx_journal : string;  (* minimized *)
  cx_full : string;  (* full journal of the confirming replay *)
  cx_orig_len : int;
  cx_found_after : int;  (* branch executions until detection *)
  cx_shrink_runs : int;  (* branch executions spent minimizing *)
}

type report = {
  rr_scenario : string;
  rr_nvcpus : int;
  rr_weakened : bool;
  rr_runs : int;
  rr_branch_points : int;
  rr_branched : int;
  rr_pruned : int;
  rr_deferred : int;
  rr_max_depth : int;
  rr_violation : counterexample option;
}

let exhausted r = r.rr_deferred = 0

let pruning_ratio r =
  let denom = r.rr_pruned + r.rr_branched + r.rr_deferred in
  if denom = 0 then 0.0 else float_of_int r.rr_pruned /. float_of_int denom

let frontier_coverage r =
  let frontier = r.rr_branched + r.rr_deferred in
  if frontier = 0 then 1.0 else float_of_int r.rr_branched /. float_of_int frontier

let explore ?(config = default_config) sc =
  let st =
    {
      st_runs = 0;
      st_branch_points = 0;
      st_branched = 0;
      st_pruned = 0;
      st_deferred = 0;
      st_max_depth = 0;
    }
  in
  let r0 = run_branch config sc ~prefix:"" in
  st.st_runs <- 1;
  let found =
    if r0.br_diverged then
      Some { r0 with br_outcome = O.Crashed "empty prefix diverged (broken scenario)" }
    else if not (O.ok r0.br_outcome) then Some r0
    else
      try
        expand config sc st ~sleep:ISet.empty ~from:0 r0;
        None
      with Found r -> Some r
  in
  let violation =
    match found with
    | None -> None
    | Some r ->
        let cls = r.br_outcome in
        let found_after = st.st_runs in
        let mk journal full shrink_runs =
          {
            cx_scenario = sc.sc_name;
            cx_class = O.class_name cls;
            cx_detail = O.to_string cls;
            cx_journal = journal;
            cx_full = full;
            cx_orig_len = String.length r.br_journal;
            cx_found_after = found_after;
            cx_shrink_runs = shrink_runs;
          }
        in
        Some
          (match minimize config sc ~cls r.br_journal with
          | Some (minj, confirm, mruns) ->
              st.st_runs <- st.st_runs + mruns;
              mk minj confirm.br_journal mruns
          | None ->
              (* not even the original journal re-confirmed — report it
                 unminimized rather than hide the finding *)
              mk r.br_journal r.br_journal 0)
  in
  {
    rr_scenario = sc.sc_name;
    rr_nvcpus = sc.sc_nvcpus;
    rr_weakened = sc.sc_weakened;
    rr_runs = st.st_runs;
    rr_branch_points = st.st_branch_points;
    rr_branched = st.st_branched;
    rr_pruned = st.st_pruned;
    rr_deferred = st.st_deferred;
    rr_max_depth = st.st_max_depth;
    rr_violation = violation;
  }

(* Exposed for tests: one prescribed-prefix execution. *)
let probe ?(config = default_config) sc ~prefix =
  let r = run_branch config sc ~prefix in
  (r.br_outcome, r.br_journal, r.br_diverged)

(* --- replay artifacts ---------------------------------------------- *)

type artifact = {
  af_scenario : string;
  af_class : string;
  af_journal : string;
  af_full : string;  (* "" = byte-for-byte check skipped *)
}

let artifact_of_counterexample cx =
  let dash s = if s = "" then "-" else s in
  Printf.sprintf "veil-explore v1 scenario=%s class=%s journal=%s full=%s detail=%s"
    cx.cx_scenario cx.cx_class (dash cx.cx_journal) (dash cx.cx_full)
    (String.map (fun c -> if c = ' ' || c = '\n' then '_' else c) cx.cx_detail)

let parse_artifact line =
  match String.split_on_char ' ' (String.trim line) with
  | "veil-explore" :: "v1" :: fields ->
      let get k =
        List.find_map
          (fun f ->
            match String.index_opt f '=' with
            | Some i when String.sub f 0 i = k ->
                Some (String.sub f (i + 1) (String.length f - i - 1))
            | _ -> None)
          fields
      in
      let undash = function Some "-" -> "" | Some v -> v | None -> "" in
      (match (get "scenario", get "class") with
      | Some s, Some c ->
          Ok
            {
              af_scenario = s;
              af_class = c;
              af_journal = undash (get "journal");
              af_full = undash (get "full");
            }
      | _ -> Error "artifact missing scenario=/class= fields")
  | _ -> Error "not a veil-explore v1 artifact line"

let replay ?(config = default_config) af =
  match find_scenario af.af_scenario with
  | None -> Error ("unknown scenario: " ^ af.af_scenario)
  | Some sc -> (
      let r = run_branch config sc ~prefix:af.af_journal in
      if r.br_diverged then Error "journal diverged from the schedule it drives"
      else
        let cls = O.class_name r.br_outcome in
        if not (String.equal cls af.af_class) then
          Error
            (Printf.sprintf "replay classified %s, artifact says %s (outcome: %s)" cls
               af.af_class (O.to_string r.br_outcome))
        else
          match af.af_full with
          | "" ->
              Ok
                (Printf.sprintf "%s: journal %s reproduced class %s" af.af_scenario
                   (if af.af_journal = "" then "(empty)" else af.af_journal)
                   cls)
          | full when not (String.equal r.br_journal full) ->
              Error
                (Printf.sprintf
                   "replayed schedule is not byte-identical: ran %s, artifact full=%s"
                   r.br_journal full)
          | _ ->
              Ok
                (Printf.sprintf "%s: journal %s re-executed byte-for-byte -> %s" af.af_scenario
                   (if af.af_journal = "" then "(empty)" else af.af_journal)
                   (O.to_string r.br_outcome)))

(* --- JSON report (hand-built, like the chaos driver) --------------- *)

let report_json rs =
  let b = Buffer.create 1024 in
  let esc = Obs.Metrics.json_escape in
  Buffer.add_string b "{\"scenarios\":[";
  List.iteri
    (fun k r ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"scenario\":\"%s\",\"nvcpus\":%d,\"weakened\":%b,\"branches\":%d,\"branch_points\":%d,\"explored\":%d,\"pruned\":%d,\"deferred\":%d,\"pruning_ratio\":%.3f,\"frontier_coverage\":%.3f,\"exhausted\":%b,\"max_depth\":%d,\"violation\":"
           (esc r.rr_scenario) r.rr_nvcpus r.rr_weakened r.rr_runs r.rr_branch_points
           r.rr_branched r.rr_pruned r.rr_deferred (pruning_ratio r) (frontier_coverage r)
           (exhausted r) r.rr_max_depth);
      (match r.rr_violation with
      | None -> Buffer.add_string b "null"
      | Some cx ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"class\":\"%s\",\"detail\":\"%s\",\"journal\":\"%s\",\"full\":\"%s\",\"orig_len\":%d,\"found_after\":%d,\"shrink_runs\":%d}"
               (esc cx.cx_class) (esc cx.cx_detail) (esc cx.cx_journal) (esc cx.cx_full)
               cx.cx_orig_len cx.cx_found_after cx.cx_shrink_runs));
      Buffer.add_char b '}')
    rs;
  Buffer.add_string b
    (Printf.sprintf "],\"ok\":%b}"
       (List.for_all (fun r -> r.rr_weakened || r.rr_violation = None) rs));
  Buffer.contents b
