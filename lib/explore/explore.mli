(** Veil-Explore (ISSUE 9): exhaustive interleaving search over the §5
    monitor protocols, with minimized counterexample journals.

    The deterministic SMP interleaver makes every scheduling decision a
    pure function of the schedule prefix, so the schedule {e tree} of a
    bounded scenario can be enumerated without state capture: re-boot,
    replay a journal prefix byte-for-byte, take the first runnable VCPU
    beyond it, and record the runnable alternatives the run did not
    take.  Depth-first backtracking over those alternatives — with
    DPOR-style sleep-set pruning of commutative (invisible) steps and a
    configurable branch budget — visits the interleavings of four
    bounded scenarios, re-checking the chaos invariant classification
    plus cross-branch invariants (slog chain intact, IDCB sequence
    monotonicity, Dom_MON exclusivity, ring replay-cache consistency)
    on every branch.  Violations are shrunk to a minimal journal by
    greedy deletion with replay confirmation and emitted as a one-line
    artifact that [veilctl explore --replay] re-executes byte-for-byte.

    See DESIGN.md §14 for the branch-point model and the pruning
    soundness argument. *)

(** {1 Configuration} *)

type config = {
  cf_budget : int;  (** max branch executions per scenario (the DFS budget) *)
  cf_max_steps : int;  (** interleaver steps per branch before the schedule watchdog *)
  cf_watchdog : int;  (** fault-plan world-exit budget per branch *)
  cf_seed : int;  (** fault-plan seed (scenarios with chaos sites) *)
}

val default_config : config
(** budget 200, 4096 interleaver steps, 2M world exits, seed 11. *)

(** {1 Scenarios} *)

type scenario = {
  sc_name : string;
  sc_desc : string;
  sc_nvcpus : int;
  sc_weakened : bool;
      (** test-only weakened guard: a violation is the expected outcome *)
  sc_sites : (Chaos.Fault_plan.site * float * int option) list;
      (** (site, prob, max_hits) armed on every branch's fault plan *)
  sc_body : Veil_core.Boot.veil_system -> Veil_core.Smp.t -> unit -> unit;
      (** post-bring-up: registers the workers and returns the
          end-of-branch check (raises {!Chaos_outcome.Fail} on
          violation) *)
}

val all_scenarios : scenario list
(** The four bounded scenarios of ISSUE 9: [ap-race] (AP bring-up
    racing a domain switch), [rmp-shootdown] (concurrent RMPADJUST +
    TLB shootdown), [oscall-replay] (os_call replay under relay
    dup/reorder), [ring-race] (ring batch flush racing a synchronous
    os_call). *)

val weakened_scenarios : scenario list
(** TEST-ONLY scenarios with a deliberately weakened guard
    ([weakened-replay]: IDCB replay cache disabled), demonstrating the
    detect → minimize → replay pipeline end-to-end.  Excluded from
    [all_scenarios]; a violation here is the expected outcome. *)

val find_scenario : string -> scenario option

(** {1 Exploration} *)

type counterexample = {
  cx_scenario : string;
  cx_class : string;  (** stable class token, {!Chaos_outcome.class_name} *)
  cx_detail : string;  (** full outcome string of the confirming replay *)
  cx_journal : string;  (** minimized journal (may be [""]) *)
  cx_full : string;  (** full journal of the confirming replay *)
  cx_orig_len : int;  (** journal length before minimization *)
  cx_found_after : int;  (** branch executions until detection *)
  cx_shrink_runs : int;  (** branch executions spent minimizing *)
}

type report = {
  rr_scenario : string;
  rr_nvcpus : int;
  rr_weakened : bool;
  rr_runs : int;  (** branch executions, root + DFS + minimization *)
  rr_branch_points : int;  (** decisions with >= 2 runnable VCPUs *)
  rr_branched : int;  (** untaken alternatives actually executed *)
  rr_pruned : int;  (** alternatives skipped by sleep-set pruning *)
  rr_deferred : int;  (** alternatives beyond the budget (open frontier) *)
  rr_max_depth : int;
  rr_violation : counterexample option;
}

val exhausted : report -> bool
(** No alternative was left unexplored: the reported tree is the whole
    (pruning-reduced) schedule tree of the scenario. *)

val pruning_ratio : report -> float
(** pruned / (pruned + explored + deferred); 0 when no alternatives. *)

val frontier_coverage : report -> float
(** explored / (explored + deferred); 1 when exhausted. *)

val explore : ?config:config -> scenario -> report
(** Enumerate the scenario's schedule tree depth-first.  Stops at the
    first invariant violation, minimizes it, and reports it along with
    the search statistics accumulated so far. *)

val probe : ?config:config -> scenario -> prefix:string -> Chaos_outcome.t * string * bool
(** One prescribed-prefix branch execution: (outcome, full journal,
    diverged).  [diverged] means the prefix named a VCPU that was not
    runnable at that step.  Exposed for tests. *)

(** {1 Replay artifacts} *)

type artifact = {
  af_scenario : string;
  af_class : string;
  af_journal : string;
  af_full : string;  (** [""] skips the byte-for-byte journal check *)
}

val artifact_of_counterexample : counterexample -> string
(** One line: [veil-explore v1 scenario=... class=... journal=...
    full=... detail=...] — the replay artifact checked into [test/]
    and uploaded by CI. *)

val parse_artifact : string -> (artifact, string) result

val replay : ?config:config -> artifact -> (string, string) result
(** Re-execute the artifact's journal byte-for-byte: [Ok] with a human
    summary when the run reproduces the recorded class (and, when
    [af_full] is present, the exact full schedule); [Error] otherwise. *)

(** {1 Reports} *)

val report_json : report list -> string
(** One JSON object: per-scenario branch counts, pruning ratio,
    frontier coverage, exhaustion flag and minimized counterexample
    (if any); ["ok"] is true when no non-weakened scenario violated. *)
