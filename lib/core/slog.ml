module T = Sevsnp.Types
module C = Sevsnp.Cycles
module P = Sevsnp.Platform

type stats = { mutable appended : int; mutable dropped_full : int; mutable fetches : int }

type t = {
  mon : Monitor.t;
  region : Layout.region;
  c_appended : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_fetches : Obs.Metrics.counter;
  c_buffered : Obs.Metrics.counter;
  g_degraded : Obs.Metrics.gauge;
  pending : string Queue.t array;
      (** graceful degradation: lines that arrived while the region was
          full wait here (bounded) and are flushed by {!clear}.
          Sharded per-VCPU (Veil-Ring): a parked append touches only
          the appending VCPU's queue, so degraded-mode bookkeeping
          stays out of the shared critical section. *)
  mutable head : int;  (** next free byte offset within the region *)
  mutable nlines : int;
  mutable chain : bytes;
}

(* Bounded buffered-retry queue (per VCPU shard): past this the service
   sheds records (still explicitly — the caller sees the error
   response). *)
let pending_cap = 256

let nshards = 8

let shard_of t vcpu = t.pending.(vcpu.Sevsnp.Vcpu.id land (nshards - 1))

let stats t =
  {
    appended = Obs.Metrics.value t.c_appended;
    dropped_full = Obs.Metrics.value t.c_dropped;
    fetches = Obs.Metrics.value t.c_fetches;
  }
let capacity_bytes t = Layout.region_size t.region * T.page_size
let used_bytes t = t.head
let count t = t.nlines

let chain_digest t = t.chain

let extend_chain prev line =
  let ctx = Veil_crypto.Sha256.init () in
  Veil_crypto.Sha256.update ctx prev;
  Veil_crypto.Sha256.update_string ctx line;
  Veil_crypto.Sha256.finalize ctx

let verify_chain ~lines ~digest =
  let d = List.fold_left extend_chain (Bytes.make 32 '\000') lines in
  Bytes.equal d digest

let base_gpa t = T.gpa_of_gpfn t.region.Layout.lo

(* Raw framed append of an already-in-chain-order line; the caller has
   checked capacity and holds Dom_SEC write access to the region. *)
let write_line t vcpu line =
  let platform = Monitor.platform t.mon in
  let len = String.length line in
  let framed = Bytes.create (4 + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int len);
  Bytes.blit_string line 0 framed 4 len;
  Sevsnp.Vcpu.charge vcpu C.Copy (C.copy_cost (len + 4));
  Sevsnp.Vcpu.charge vcpu C.Monitor 350 (* bookkeeping *);
  P.write platform vcpu (base_gpa t + t.head) framed;
  Sevsnp.Vcpu.charge vcpu C.Crypto (C.hash_cost len);
  t.chain <- extend_chain t.chain line;
  t.head <- t.head + len + 4;
  t.nlines <- t.nlines + 1;
  Obs.Metrics.incr t.c_appended

let append t vcpu (record : Guest_kernel.Audit.record) =
  let line = Guest_kernel.Audit.to_line record in
  let len = String.length line in
  if t.head + len + 4 > capacity_bytes t then begin
    Obs.Metrics.incr t.c_dropped;
    (* Degraded, not dead: park the record in the bounded retry buffer
       (flushed on the next {!clear}), surface the state via the
       metrics registry, and answer with an explicit error. *)
    (let q = shard_of t vcpu in
     if Queue.length q < pending_cap then begin
       Queue.push line q;
       Obs.Metrics.incr t.c_buffered;
       Obs.Metrics.set t.g_degraded 1
     end);
    Idcb.Resp_error "VeilS-LOG: reserved storage full; retrieve logs"
  end
  else begin
    let platform = Monitor.platform t.mon in
    let prof = platform.P.profiler in
    let prof_on = Obs.Profiler.enabled prof in
    if prof_on then
      Obs.Profiler.push prof ~vcpu:vcpu.Sevsnp.Vcpu.id
        ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu) "slog_append";
    (* Length-prefixed append into the protected region (Dom_SEC rw). *)
    write_line t vcpu line;
    (let tr = platform.P.tracer in
     if Obs.Trace.enabled tr then
       Obs.Trace.emit tr ~vcpu:vcpu.Sevsnp.Vcpu.id
         ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu)
         ~bucket:"monitor" ~arg:(len + 4)
         ~id:(Obs.Profiler.id prof ~vcpu:vcpu.Sevsnp.Vcpu.id) Obs.Trace.Audit_emit);
    if prof_on then
      Obs.Profiler.pop prof ~vcpu:vcpu.Sevsnp.Vcpu.id ~ts:(Sevsnp.Vcpu.rdtsc vcpu);
    Idcb.Resp_ok
  end

(* OS-assisted fetch into an OS buffer: the destination pointer came
   from the untrusted kernel and has already passed VeilMon's
   sanitizer; we additionally bound the copy. *)
let fetch_to_os t vcpu ~dest_gpa ~max =
  let platform = Monitor.platform t.mon in
  let n = min max t.head in
  let data = P.read platform vcpu (base_gpa t) n in
  Sevsnp.Vcpu.charge vcpu C.Copy (C.copy_cost n);
  P.write platform vcpu dest_gpa data;
  Obs.Metrics.incr t.c_fetches;
  Idcb.Resp_count n

let read_all t =
  let platform = Monitor.platform t.mon in
  let vcpu = Monitor.boot_vcpu t.mon in
  (* Trusted-side read: hop into Dom_SEC when called from below. *)
  let here = Privdom.of_vmpl (Sevsnp.Vcpu.vmpl vcpu) in
  let need_switch = not (Privdom.more_privileged here Privdom.Enc || Privdom.equal here Privdom.Sec) in
  if need_switch then Monitor.domain_switch t.mon vcpu ~target:Privdom.Sec;
  let rec go off acc =
    if off >= t.head then List.rev acc
    else begin
      let len = Int32.to_int (Bytes.get_int32_le (P.read platform vcpu (base_gpa t + off) 4) 0) in
      let line = Bytes.to_string (P.read platform vcpu (base_gpa t + off + 4) len) in
      go (off + 4 + len) (line :: acc)
    end
  in
  let lines = go 0 [] in
  if need_switch then Monitor.domain_switch t.mon vcpu ~target:here;
  lines

let degraded t = Obs.Metrics.gauge_value t.g_degraded <> 0
let pending_count t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.pending

(* Buffered retry: drain the degraded-mode shards into the (just
   retrieved and cleared) region, oldest first within each shard,
   shard 0 (the boot VCPU's) first. *)
let flush_pending t =
  if pending_count t > 0 then begin
    let vcpu = Monitor.boot_vcpu t.mon in
    let here = Privdom.of_vmpl (Sevsnp.Vcpu.vmpl vcpu) in
    let need_switch =
      not (Privdom.more_privileged here Privdom.Enc || Privdom.equal here Privdom.Sec)
    in
    if need_switch then Monitor.domain_switch t.mon vcpu ~target:Privdom.Sec;
    Array.iter
      (fun q ->
        while
          (not (Queue.is_empty q)) && t.head + String.length (Queue.peek q) + 4 <= capacity_bytes t
        do
          write_line t vcpu (Queue.pop q)
        done)
      t.pending;
    if need_switch then Monitor.domain_switch t.mon vcpu ~target:here
  end;
  if pending_count t = 0 then Obs.Metrics.set t.g_degraded 0

let clear t =
  t.head <- 0;
  t.nlines <- 0;
  t.chain <- Bytes.make 32 '\000';
  flush_pending t

let handler t _mon vcpu (req : Idcb.request) =
  match req with
  | Idcb.R_log_append record -> Some (append t vcpu record)
  | Idcb.R_log_fetch { dest_gpa; max } -> Some (fetch_to_os t vcpu ~dest_gpa ~max)
  | _ -> None

let install mon =
  let m = (Monitor.platform mon).P.metrics in
  let t =
    {
      mon;
      region = (Monitor.layout mon).Layout.log_region;
      c_appended = Obs.Metrics.counter m "slog.appended";
      c_dropped = Obs.Metrics.counter m "slog.dropped_full";
      c_fetches = Obs.Metrics.counter m "slog.fetches";
      c_buffered = Obs.Metrics.counter m "slog.buffered_retries";
      g_degraded = Obs.Metrics.gauge m "slog.degraded";
      pending = Array.init nshards (fun _ -> Queue.create ());
      head = 0;
      nlines = 0;
      chain = Bytes.make 32 '\000';
    }
  in
  Monitor.register_service mon ~name:"veils-log" ~target:Privdom.Sec (fun m vcpu req ->
      handler t m vcpu req);
  t
