(** Veil-SMP: multi-VCPU guest execution.

    {!bring_up} boots application processors *through the monitor*:
    for each AP the boot VCPU issues the §5 [R_vcpu_boot] delegation,
    and VeilMon hot-plugs the VCPU, creates/validates its per-domain
    VMSA replicas and IDCB, provisions its kernel GHCB and has the
    hypervisor enter it at Dom_UNT.

    {!run} then drives the guest with the host's deterministic
    interleaver ({!Hypervisor.Hv.Interleave}): one runnable VCPU is
    picked per step, the kernel is retargeted at it
    ({!Guest_kernel.Kernel.set_vcpu}) and at most one coroutine from
    its runqueue is stepped — with deterministic work stealing when
    its own queue has nothing runnable.  Same policy + seed + VCPU
    count produce the identical schedule (see {!journal}). *)

type t

val bring_up :
  ?policy:Hypervisor.Hv.Interleave.policy -> Boot.veil_system -> nvcpus:int -> unit -> t
(** Boot APs [1 .. nvcpus-1] via the monitor (the boot VCPU is id 0)
    and set up the per-VCPU runqueues and the interleaver.  Default
    policy is [Round_robin].  Raises [Failure] if the monitor refuses
    a bring-up. *)

val spawn : ?vcpu:int -> t -> name:string -> (unit -> unit) -> unit
(** Register a coroutine; [vcpu] pins its home runqueue (default:
    round-robin assignment). *)

val run : ?max_steps:int -> t -> unit
(** Interleave until every coroutine finished.  Raises
    {!Guest_kernel.Sched.Deadlock} when all live coroutines are
    blocked.  [max_steps] (default: unbounded) is the Veil-Explore
    schedule watchdog: exceeding it raises
    [Sevsnp.Types.Cvm_halted "chaos watchdog: ..."], which the shared
    chaos classifier maps to [Watchdog].  Always restores the kernel's
    current VCPU to the boot VCPU on exit. *)

val sched : t -> Guest_kernel.Sched.t
val nvcpus : t -> int

val vcpu : t -> int -> Sevsnp.Vcpu.t
(** The hardware VCPU with the given id. *)

val journal : t -> string
(** The interleaver's schedule journal: one digit per step. *)

val schedule_steps : t -> int

val steals : t -> int
(** Cross-runqueue task migrations performed so far. *)
