(** System bring-up: native CVM and Veil CVM.

    [boot_veil] reproduces the paper's modified boot flow (§5.1): the
    hypervisor launches the measured boot image with a single VMPL-0
    VCPU running VeilMon, which protects memory, installs services,
    replicates the VCPU and only then drops into the kernel at
    Dom_UNT.  [boot_native] is the baseline: the same kernel booted at
    VMPL-0 with no monitor, used by every native-vs-Veil experiment. *)

type veil_system = {
  platform : Sevsnp.Platform.t;
  hv : Hypervisor.Hv.t;
  mon : Monitor.t;
  kernel : Guest_kernel.Kernel.t;
  kci : Kci.t;
  slog : Slog.t;
  enc : Encsvc.t;
  vtpm : Vtpm.t;
  vcpu : Sevsnp.Vcpu.t;
  layout : Layout.t;
  boot_cycles : int;  (** guest cycles consumed by the whole boot *)
}

type native_system = {
  n_platform : Sevsnp.Platform.t;
  n_hv : Hypervisor.Hv.t;
  n_kernel : Guest_kernel.Kernel.t;
  n_vcpu : Sevsnp.Vcpu.t;
  n_boot_cycles : int;
}

val boot_veil :
  ?npages:int ->
  ?log_frames:int ->
  ?seed:int ->
  ?activate_kci:bool ->
  ?chaos:Chaos.Fault_plan.t ->
  unit ->
  veil_system
(** Defaults: [npages = 8192] (32 MB guest), KCI activated.  [?chaos]
    arms a Veil-Chaos fault plan on the platform right after creation
    (so the boot sweep itself runs under injection); when absent,
    {!default_chaos} is consulted. *)

val default_chaos : (unit -> Chaos.Fault_plan.t option) ref
(** Called by [boot_veil] when no explicit [?chaos] was given; the
    chaos driver installs its per-trial plan here so existing
    workloads run under fault injection without plumbing changes.
    Defaults to [fun () -> None] (chaos disarmed). *)

val boot_native : ?npages:int -> ?seed:int -> unit -> native_system

val default_npages : int

(* Veil-Ring: opt-in batched submission rings *)

val default_ring_slots : int

val enable_rings : ?slots:int -> veil_system -> unit -> unit
(** Switch the booted system to batched monitor traffic: allocate one
    {!Ring.t} per existing VCPU from OS memory, register each with
    VeilMon (placement-checked), and reinstall the kernel hooks so
    fire-and-forget requests (audit records, pt_syncs) ride the
    current VCPU's ring — flushed at the syscall tail once half full,
    or inline on full-ring backpressure — while synchronous calls
    flush first to preserve program order.  VCPUs must already be
    booted (call after {!Smp.bring_up}); rings stay on until the
    system is discarded. *)

val rings_enabled : veil_system -> bool

(* Veil-Pulse: attested telemetry anchoring *)

val anchor_pulse : veil_system -> int
(** Drain the platform sampler's pending interval anchors into
    VeilS-LOG through the ordinary (ringable) [R_log_append] path, one
    record per captured interval (sysno [Write], pid 0, detail
    ["pulse i=<n> t1=<cycle> digest=<hex> chain=<hex>"]), then flush
    the rings so every anchor is observable.  Returns how many anchors
    were appended.  Only anchors pending at entry are drained — the
    drain's own monitor traffic may close further intervals, which
    ride the next call. *)

val pulse_anchor_lines : veil_system -> string list
(** The pulse anchor lines VeilS-LOG currently retains, oldest first —
    the chain-protected record a remote verifier reads back to learn
    the trusted interval digests. *)

val flush_rings : veil_system -> unit
(** Drain every VCPU's leftover slots — the barrier before reading
    audit logs, counters or any other state that must observe all
    deferred traffic. *)
