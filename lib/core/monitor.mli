(** VeilMon — the Dom_MON security monitor (§5).

    Boots at VMPL-0 in place of the kernel, protects its own and the
    services' memory with RMPADJUST, replicates every VCPU into one
    instance per domain (§5.2), mediates the architecturally-restricted
    kernel functionality (§5.3), and routes sanitized OS requests to
    the protected services over per-VCPU IDCBs. *)

type t

type stats = {
  mutable os_calls : int;  (** OS → trusted-domain round trips *)
  mutable delegated_pvalidates : int;
  mutable delegated_vcpu_boots : int;
  mutable sanitizer_rejections : int;
}

val create : hv:Hypervisor.Hv.t -> layout:Layout.t -> boot_vcpu:Sevsnp.Vcpu.t -> t
(** Construct on the boot VCPU (must be running the VMPL-0 launch
    instance).  Call {!initialize} to run the protection sweep. *)

val initialize : t -> kernel_entry:int -> unit
(** Veil's boot-time work (§5.1-5.2, measured by experiment E1):
    PVALIDATE every guest frame, RMPADJUST the whole address space
    into the domain policy, create the per-domain VCPU replicas and
    install hypervisor policies. *)

val platform : t -> Sevsnp.Platform.t
val hv : t -> Hypervisor.Hv.t
val layout : t -> Layout.t
val stats : t -> stats
val boot_vcpu : t -> Sevsnp.Vcpu.t
val monitor_ghcb_gpa : t -> Sevsnp.Types.gpa

val vmsa_of : t -> vcpu_id:int -> dom:Privdom.t -> Sevsnp.Vmsa.t
(** The replica instance for a (VCPU, domain); raises if missing. *)

val idcb_of : t -> vcpu_id:int -> Idcb.t

(* Protected-region registry & sanitization (§8.1) *)

val add_protected_frames : t -> owner:Privdom.t -> Sevsnp.Types.gpfn list -> unit
val remove_protected_frames : t -> Sevsnp.Types.gpfn list -> unit
val frame_is_protected : t -> Sevsnp.Types.gpfn -> bool
val gpa_is_protected : t -> Sevsnp.Types.gpa -> bool

(* Service plumbing *)

type handler = t -> Sevsnp.Vcpu.t -> Idcb.request -> Idcb.response option
(** Services return [Some response] for requests they own. *)

val register_service : t -> name:string -> target:Privdom.t -> handler -> unit
(** [target] is the domain the request is dispatched in (services run
    at Dom_SEC; delegated VMPL-0 work at Dom_MON). *)

val os_call : t -> Sevsnp.Vcpu.t -> Idcb.request -> Idcb.response
(** The full §5.2 path: the OS stamps the IDCB with the next request
    sequence number, requests a hypervisor-relayed switch to the
    serving domain, the request is sanitized and dispatched (at most
    once per sequence — see {!serve_pending}), and the VCPU switches
    back.  Charges both switch costs and the IDCB copies. *)

type wait_stats = {
  ws_entries : int;  (** os_calls through the ledger *)
  ws_busy_cycles : int;  (** summed Monitor+Switch service cycles *)
  ws_queued_cycles : int;  (** summed queueing delay (the serialized slice) *)
  ws_by_type : (string * int * int * int) list;
      (** (call type, entries, busy, queued), request tags with traffic only *)
}
(** Veil-Scope serialized-monitor entry ledger: the monitor modelled as
    a single-server queue on the machine clock — the furthest-ahead
    VCPU's rdtsc relative to the last {!reset_wait_ledger} window
    start.  An os_call arriving before the previous service's end is
    queued for the difference — the direct measurement of the
    serialized VeilMon slice that E-scale's hw-amdahl column infers.
    At 1 VCPU queueing is identically zero.  Always on: plain int
    bookkeeping, no allocation, no cycle charges. *)

val wait_stats : t -> wait_stats

val reset_wait_ledger : t -> unit
(** Zero the ledger (measurement windows; boot traffic excluded). *)

val serve_pending : t -> Sevsnp.Vcpu.t -> Idcb.response
(** Trusted-domain service of the request currently in the VCPU's
    IDCB.  Each IDCB sequence number is served at most once: a
    duplicated/replayed relay returns the cached response (counted
    under ["monitor.replays_suppressed"]) instead of re-executing a
    state-mutating request. *)

val weaken_replay_guard_for_test : t -> unit
(** TEST-ONLY.  Disable the IDCB and ring replay caches so a
    duplicated/replayed relay re-executes its request.  Used by
    Veil-Explore's weakened-guard scenario to demonstrate end-to-end
    detect → minimize → replay of the silent double execution the
    guard normally prevents.  Never call this outside a test or an
    explore scenario marked weakened. *)

(* Veil-Ring: batched submission/completion rings *)

val register_ring : t -> Ring.t -> (unit, string) result
(** Accept a per-VCPU submission ring.  Placement is checked like an
    IDCB's (§5.2): the backing frame must be OS-writable private guest
    memory and must not alias any protected region.  One ring per
    VCPU; re-registration replaces. *)

val ring_of : t -> vcpu_id:int -> Ring.t option

val ring_submit : t -> Sevsnp.Vcpu.t -> Ring.t -> Idcb.request -> bool
(** Producer side: enqueue a deferrable request, charging the slot
    copy the IDCB write would have paid.  [false] = ring full
    (backpressure — flush first). *)

val os_call_batch : t -> Sevsnp.Vcpu.t -> Ring.t -> int
(** Flush every pending slot through ONE Monitor+Switch entry: stamp
    the batch sequence, switch to the serving domain (Dom_MON if any
    slot is VMPL-0-delegated, else Dom_SEC), sanitize and dispatch
    each slot ({!serve_batch}), switch back, and retire the slots.
    Accounted in the wait ledger as a single entry under the
    ["ring_flush"] tag.  Returns the number of slots served; 0 for an
    empty ring (no switch paid). *)

val serve_batch : t -> Sevsnp.Vcpu.t -> Ring.t -> int
(** Trusted-domain half of a flush, exposed for replay testing: serves
    each pending slot at most once per batch sequence.  A duplicated
    relay of an already-served batch returns the cached per-slot
    responses (counted per slot under ["monitor.replays_suppressed"]).
    A slot that fails its framing check (ring_slot_corrupt chaos) is
    rejected and journaled under ["monitor.ring_slot_rejected"]
    without poisoning the rest of the batch. *)

val domain_switch : t -> Sevsnp.Vcpu.t -> target:Privdom.t -> unit
(** Raw hypervisor-relayed switch (used by services and the enclave
    runtime); current instance's GHCB must permit it.  The switch is
    verified: if the hypervisor did not actually enter the target
    instance it is re-requested with cycle-accounted backoff
    (["monitor.switch_retries"]), and a persistent refusal halts the
    CVM explicitly. *)

(* Monitor-side primitives for services *)

val mon_rmpadjust :
  t ->
  Sevsnp.Vcpu.t ->
  gpfn:Sevsnp.Types.gpfn ->
  target:Privdom.t ->
  perms:Sevsnp.Perm.t ->
  (unit, string) result
(** RMPADJUST with bounded retry: architecturally transient failures
    (FAIL_INUSE) are re-attempted up to a fixed budget with
    exponential cycle-accounted backoff (["monitor.insn_retries"])
    before surfacing an explicit [Error]. *)

val mon_pvalidate :
  t -> Sevsnp.Vcpu.t -> gpfn:Sevsnp.Types.gpfn -> to_private:bool -> (unit, string) result
(** PVALIDATE with the same bounded-retry treatment. *)

val alloc_mon_frame : t -> Sevsnp.Types.gpfn
(** Bump-allocate from the Dom_MON heap. *)

val alloc_svc_frame : t -> Sevsnp.Types.gpfn

val free_svc_frame : t -> Sevsnp.Types.gpfn -> unit
(** Return a Dom_SEC frame (e.g. a destroyed enclave's page-table
    clone) to the service heap. *)

val set_enclave_ghcb_policy : t -> Sevsnp.Vcpu.t -> ghcb_gpfn:Sevsnp.Types.gpfn -> unit
(** Instruct the hypervisor that this (user-mapped) GHCB may only
    switch between Dom_UNT and Dom_ENC (§6.2). *)

(* Attestation / secure channel (§5.1) *)

val dh_public : t -> Veil_crypto.Bignum.t
val attestation_report : t -> Sevsnp.Vcpu.t -> nonce:bytes -> Sevsnp.Attestation.report
(** Report with [report_data = H(nonce || dh_public)], requested from
    Dom_MON so the report carries VMPL-0. *)

val session_key_with : t -> peer_public:Veil_crypto.Bignum.t -> bytes
