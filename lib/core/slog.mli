(** VeilS-LOG — tamper-proof system audit logs (§6.3).

    Keeps kaudit records in an append-only store inside the Dom_SEC
    reserved log region, written *before* the audited event executes
    (execute-ahead — the kernel hook fires from [Audit.emit]).  Entries
    are hash-chained so any after-the-fact modification of retrieved logs is
    evident; a remote user retrieves and clears the store over
    VeilMon's authenticated channel. *)

type t

type stats = {
  mutable appended : int;
  mutable dropped_full : int;  (** appends refused because the region filled up *)
  mutable fetches : int;
}

val install : Monitor.t -> t
(** Register with VeilMon; storage is the layout's [log_region]. *)

val stats : t -> stats
val capacity_bytes : t -> int
val used_bytes : t -> int
val count : t -> int

val read_all : t -> string list
(** Trusted-side read of all stored lines (oldest first) — what the
    remote user receives over the secure channel. *)

val chain_digest : t -> bytes
(** Running SHA-256 hash chain over every appended line. *)

val verify_chain : lines:string list -> digest:bytes -> bool
(** Remote-side check that [lines] reproduce [digest]. *)

val clear : t -> unit
(** Remote-user-initiated reset after retrieval (§6.3).  Also drains
    the degraded-mode pending buffer into the freshly-cleared region
    (oldest first), leaving ["slog.degraded"] at 0 when it empties. *)

val degraded : t -> bool
(** True while the service is in graceful-degradation mode: the region
    filled up, so appends are being parked in a bounded retry buffer
    (and answered with an explicit error) instead of crashing.
    Mirrored by the ["slog.degraded"] registry gauge. *)

val pending_count : t -> int
(** Records currently parked in the degraded-mode retry buffer. *)
