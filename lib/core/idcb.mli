(** Inter-domain communication blocks (§5.2).

    Shared-memory request/response mailboxes between domains, always
    allocated in the *less privileged* party's memory so both sides
    can access them, at per-VCPU granularity.  Requests from the OS
    are untrusted: any address they carry is sanitized by VeilMon
    before use (§8.1). *)

type request =
  | R_none
  | R_pvalidate of { gpfn : Sevsnp.Types.gpfn; to_private : bool }
      (** page-state-change delegation (§5.3) *)
  | R_vcpu_boot of { vcpu_id : int }  (** VCPU boot/hotplug delegation (§5.3) *)
  | R_module_load of {
      image : Guest_kernel.Kmodule.image;
      text_gpfns : Sevsnp.Types.gpfn list;  (** OS-allocated frames (§6.1) *)
      data_gpfns : Sevsnp.Types.gpfn list;
    }  (** VeilS-KCI *)
  | R_module_unload of Guest_kernel.Kmodule.loaded
  | R_log_append of Guest_kernel.Audit.record  (** VeilS-LOG execute-ahead *)
  | R_log_fetch of { dest_gpa : Sevsnp.Types.gpa; max : int }
      (** OS-assisted retrieval into an OS buffer — the pointer the
          sanitizer must vet *)
  | R_enclave_finalize of Guest_kernel.Enclave_desc.t  (** VeilS-ENC *)
  | R_enclave_destroy of Guest_kernel.Enclave_desc.t
  | R_enclave_evict of { enclave_id : int; va : Sevsnp.Types.va }
  | R_enclave_restore of { enclave_id : int; va : Sevsnp.Types.va; gpfn : Sevsnp.Types.gpfn }
  | R_pt_sync of { pid : int; va : Sevsnp.Types.va; npages : int; prot : Guest_kernel.Ktypes.prot }
  | R_enclave_schedule of { enclave_id : int; vcpu_id : int }
      (** §10 multi-threading: the OS scheduler asks VeilMon to
          synchronize a VCPU's Dom_ENC instance with this enclave *)
  | R_tpm_extend of { pcr : int; data : bytes }  (** VeilS-TPM (SVSM-style service) *)
  | R_tpm_quote of { nonce : bytes }

type response =
  | Resp_none
  | Resp_ok
  | Resp_loaded of Guest_kernel.Kmodule.loaded
  | Resp_measurement of bytes
  | Resp_count of int
  | Resp_quote of bytes  (** serialized, signed vTPM quote *)
  | Resp_error of string

type t = {
  gpfn : Sevsnp.Types.gpfn;  (** backing frame (in the less-privileged domain) *)
  vcpu_id : int;
  mutable request : request;
  mutable response : response;
  mutable seq : int;
      (** monotonic request sequence number, bumped by the OS before
          each {!Monitor.os_call}; the monitor serves each sequence at
          most once (replayed-relay detection) *)
}

val create : gpfn:Sevsnp.Types.gpfn -> vcpu_id:int -> t

val request_size : request -> int
(** Approximate wire size in bytes, used to charge the cross-domain
    copy cost. *)

val ntags : int
(** Number of distinct request tags. *)

val request_tag : request -> int
(** Dense tag in [0, ntags) identifying the request's constructor —
    array index for per-call-type ledgers (never allocates). *)

val ring_flush_tag : int
(** Extra ledger tag (not a request constructor) under which a batched
    ring flush's single serialized monitor entry is accounted: the
    batch, not any one slot, holds the monitor (Veil-Ring). *)

val tag_name : int -> string
(** Stable lower-case name for a {!request_tag} ("pvalidate",
    "log_append", ...). *)

val response_size : response -> int
