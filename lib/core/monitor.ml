module P = Sevsnp.Platform
module T = Sevsnp.Types
module C = Sevsnp.Cycles
module V = Sevsnp.Vcpu

type stats = {
  mutable os_calls : int;
  mutable delegated_pvalidates : int;
  mutable delegated_vcpu_boots : int;
  mutable sanitizer_rejections : int;
}

type service = { svc_name : string; svc_target : Privdom.t; svc_handler : handler }

and handler = t -> Sevsnp.Vcpu.t -> Idcb.request -> Idcb.response option

(* Per-VCPU shard of VeilMon's hot per-call state (Veil-Ring).  The
   replay caches used to live in one Hashtbl guarded by the whole
   serialized entry; one record per VCPU keeps lookups to an array
   load, shrinks the shared critical section to true RMP mutations,
   and gives batched flushes their own (batch_seq, slot) replay
   granularity alongside the per-IDCB sequence scheme. *)
and shard = {
  mutable sh_seq : int;  (* last served IDCB sequence; -1 = none *)
  mutable sh_resp : Idcb.response;
  mutable sh_batch_seq : int;  (* last served ring batch sequence; -1 = none *)
  mutable sh_batch_n : int;  (* its slot count (for replay accounting) *)
}

and t = {
  hv : Hypervisor.Hv.t;
  platform : P.t;
  layout : Layout.t;
  boot_vcpu : V.t;
  rng : Veil_crypto.Rng.t;
  dh : Veil_crypto.Dh.keypair;
  stats : stats;
  mutable protected : (T.gpfn * T.gpfn * Privdom.t) list;  (** [lo, hi) ranges *)
  mutable protected_single : (T.gpfn, Privdom.t) Hashtbl.t;
  mutable services : service list;
  mutable replicas : (int * Privdom.t, Sevsnp.Vmsa.t) Hashtbl.t;
  idcbs : (int, Idcb.t) Hashtbl.t;
  mutable mon_ghcb_gpa : T.gpa;
  mutable mon_heap_cursor : T.gpfn;
  mutable svc_cursor : T.gpfn;
  mutable svc_free : T.gpfn list;
  mutable vmsa_cursor : T.gpfn;
  mutable kernel_entry : int;
  mutable initialized : bool;
  mutable replay_guard : bool;
      (* normally [true]; Veil-Explore's weakened-guard demonstration
         turns the IDCB/ring replay caches off (test-only) to prove the
         explorer detects the double execution the guard prevents *)
  shards : shard array;  (* indexed by vcpu_id: replayed-relay suppression *)
  rings : Ring.t option array;
      (* indexed by vcpu_id: the registered Veil-Ring submission ring,
         placement-checked at {!register_ring} *)
  c_os_calls : Obs.Metrics.counter;
  c_ring_flushes : Obs.Metrics.counter;
  c_ring_slots : Obs.Metrics.counter;
  c_ring_slot_rejected : Obs.Metrics.counter;
  c_sanitizer_rejections : Obs.Metrics.counter;
  c_insn_retries : Obs.Metrics.counter;
  c_switch_retries : Obs.Metrics.counter;
  c_ghcb_sanitized : Obs.Metrics.counter;
  c_replays : Obs.Metrics.counter;
  (* Serialized-monitor entry ledger (Veil-Scope).  The monitor is one
     hardware-serialized resource: on real silicon, two VCPUs' os_calls
     cannot be served concurrently.  The simulator interleaves VCPUs
     deterministically, so overlap never *executes* — but it is still
     measurable: model the monitor as a single-server queue on the
     machine clock (the furthest-ahead VCPU's window-relative rdtsc).
     Each os_call arrives at that clock and holds the server for the
     Monitor+Switch cycles it charges; an arrival before the previous
     service's end is queued for the difference.  At 1 VCPU the
     machine clock is the caller's own, which already paid the prior
     service, so queueing is identically zero and single-VCPU numbers
     are untouched; at N VCPUs the clocks advance in parallel and the
     overlap *is* the serialized slice.  Plain int bookkeeping: no
     allocation, no cycle charges. *)
  mutable mon_busy_until : int;  (* monitor-timeline end of the service in progress *)
  ledger_clock_base : int array;
      (* per-VCPU rdtsc at the last {!reset_wait_ledger}: arrivals are
         window-relative, so the boot VCPU's ~tens-of-millions head
         start (it paid for boot) does not read as every AP queueing
         behind it *)
  mutable mon_entries : int;
  mutable mon_busy_cycles : int;  (* summed service (Monitor+Switch) cycles *)
  mutable mon_queued_cycles : int;  (* summed queueing delay *)
  tag_entries : int array;  (* per Idcb.request_tag *)
  tag_busy : int array;
  tag_queued : int array;
  c_mon_busy_cycles : Obs.Metrics.counter;
  c_mon_queued_cycles : Obs.Metrics.counter;
}

let platform t = t.platform
let hv t = t.hv
let layout t = t.layout
let stats t = t.stats
let boot_vcpu t = t.boot_vcpu
let monitor_ghcb_gpa t = t.mon_ghcb_gpa

let charge t b n = V.charge t.boot_vcpu b n

let charge_on vcpu b n = V.charge vcpu b n

let create ~hv ~layout ~boot_vcpu =
  if not (T.equal_vmpl (V.vmpl boot_vcpu) T.Vmpl0) then
    failwith "VeilMon must boot on the hypervisor-created VMPL-0 instance";
  let platform = Hypervisor.Hv.platform hv in
  let rng = Veil_crypto.Rng.split platform.P.rng in
  {
    hv;
    platform;
    layout;
    boot_vcpu;
    rng;
    dh = Veil_crypto.Dh.keygen rng;
    stats = { os_calls = 0; delegated_pvalidates = 0; delegated_vcpu_boots = 0; sanitizer_rejections = 0 };
    protected = [];
    protected_single = Hashtbl.create 64;
    services = [];
    replicas = Hashtbl.create 16;
    idcbs = Hashtbl.create 8;
    mon_ghcb_gpa = 0;
    mon_heap_cursor = layout.Layout.mon_heap.Layout.lo;
    svc_cursor = layout.Layout.svc_region.Layout.lo;
    svc_free = [];
    vmsa_cursor = layout.Layout.vmsa_region.Layout.lo;
    kernel_entry = 0;
    initialized = false;
    replay_guard = true;
    shards =
      Array.init 64 (fun _ ->
          { sh_seq = -1; sh_resp = Idcb.Resp_none; sh_batch_seq = -1; sh_batch_n = 0 });
    rings = Array.make 64 None;
    c_os_calls = Obs.Metrics.counter platform.P.metrics "monitor.os_calls";
    c_ring_flushes = Obs.Metrics.counter platform.P.metrics "monitor.ring_flushes";
    c_ring_slots = Obs.Metrics.counter platform.P.metrics "monitor.ring_slots";
    c_ring_slot_rejected = Obs.Metrics.counter platform.P.metrics "monitor.ring_slot_rejected";
    c_sanitizer_rejections = Obs.Metrics.counter platform.P.metrics "monitor.sanitizer_rejections";
    c_insn_retries = Obs.Metrics.counter platform.P.metrics "monitor.insn_retries";
    c_switch_retries = Obs.Metrics.counter platform.P.metrics "monitor.switch_retries";
    c_ghcb_sanitized = Obs.Metrics.counter platform.P.metrics "monitor.ghcb_sanitized";
    c_replays = Obs.Metrics.counter platform.P.metrics "monitor.replays_suppressed";
    mon_busy_until = 0;
    ledger_clock_base = Array.make 64 0;
    mon_entries = 0;
    mon_busy_cycles = 0;
    mon_queued_cycles = 0;
    tag_entries = Array.make Idcb.ntags 0;
    tag_busy = Array.make Idcb.ntags 0;
    tag_queued = Array.make Idcb.ntags 0;
    c_mon_busy_cycles = Obs.Metrics.counter platform.P.metrics "monitor.wait.busy_cycles";
    c_mon_queued_cycles = Obs.Metrics.counter platform.P.metrics "monitor.wait.queued_cycles";
  }

(* --- protected-region registry --- *)

let add_protected_range t ~owner lo hi = t.protected <- (lo, hi, owner) :: t.protected

let add_protected_frames t ~owner frames =
  List.iter (fun f -> Hashtbl.replace t.protected_single f owner) frames

let remove_protected_frames t frames = List.iter (Hashtbl.remove t.protected_single) frames

let frame_is_protected t gpfn =
  Hashtbl.mem t.protected_single gpfn
  || List.exists (fun (lo, hi, _) -> gpfn >= lo && gpfn < hi) t.protected

let gpa_is_protected t gpa = frame_is_protected t (T.gpfn_of_gpa gpa)

(* --- allocation --- *)

let alloc_mon_frame t =
  let f = t.mon_heap_cursor in
  if f >= t.layout.Layout.mon_heap.Layout.hi then failwith "VeilMon heap exhausted";
  t.mon_heap_cursor <- f + 1;
  f

let alloc_svc_frame t =
  match t.svc_free with
  | f :: rest ->
      t.svc_free <- rest;
      Sevsnp.Phys_mem.zero_page t.platform.P.mem f;
      f
  | [] ->
      let f = t.svc_cursor in
      if f >= t.layout.Layout.svc_region.Layout.hi then failwith "Dom_SEC heap exhausted";
      t.svc_cursor <- f + 1;
      f

let free_svc_frame t f = t.svc_free <- f :: t.svc_free

let alloc_vmsa_frame t =
  let f = t.vmsa_cursor in
  if f >= t.layout.Layout.vmsa_region.Layout.hi - 1 then failwith "VMSA region exhausted";
  t.vmsa_cursor <- f + 1;
  f

(* --- replicas (§5.2) --- *)

let vmsa_of t ~vcpu_id ~dom =
  match Hashtbl.find_opt t.replicas (vcpu_id, dom) with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no %s instance for vcpu %d" (Privdom.to_string dom) vcpu_id)

let idcb_of t ~vcpu_id =
  match Hashtbl.find_opt t.idcbs vcpu_id with
  | Some i -> i
  | None -> failwith (Printf.sprintf "no IDCB for vcpu %d" vcpu_id)

let mon_ghcb t =
  match P.ghcb_at t.platform (T.gpfn_of_gpa t.mon_ghcb_gpa) with
  | Some g -> g
  | None -> failwith "monitor GHCB not initialized"

(* --- hardened hypervisor protocols (Veil-Chaos) ---

   The hypervisor is untrusted *and* unreliable: RMPADJUST/PVALIDATE
   may transiently fail (architectural FAIL_INUSE, e.g. an in-flight
   host-side operation on the frame), GHCB responses may be garbled or
   refused, relayed switches may simply not happen.  Every protocol
   below retries a bounded number of times with an exponentially
   growing, cycle-accounted backoff, then fails *explicitly* — the CVM
   never consumes an out-of-protocol value and never hangs.  The
   non-faulting path charges nothing extra (one comparison per op), so
   calibrated benchmark numbers are unchanged. *)

let max_retries = 6

let backoff_cycles attempt = 500 * (1 lsl min attempt 6)

let transient_suffix = "(transient)"

let is_transient e =
  let n = String.length transient_suffix and l = String.length e in
  l >= n && String.sub e (l - n) n = transient_suffix

let retry_insn t vcpu what f =
  let rec go attempt =
    match f () with
    | Ok _ as r -> r
    | Error e when is_transient e ->
        if attempt >= max_retries then
          Error (Printf.sprintf "%s: transient hypervisor failure persisted for %d attempts: %s" what (max_retries + 1) e)
        else begin
          Obs.Metrics.incr t.c_insn_retries;
          charge_on vcpu C.Monitor (backoff_cycles attempt);
          go (attempt + 1)
        end
    | Error _ as r -> r
  in
  go 0

(* GHCB response sanitization: the only in-protocol hypercall answers
   are 0 (ok) and 1 (refused).  Anything else — corruption, a chaos
   "declined to service" marker — is discarded and the hypercall is
   re-issued (all monitor hypercalls are idempotent); a hypervisor
   that keeps answering garbage gets an explicit halt, not trust. *)
let hypercall t vcpu req =
  let g = mon_ghcb t in
  let rec go attempt =
    g.Sevsnp.Ghcb.request <- req;
    P.vmgexit t.platform vcpu;
    let resp = g.Sevsnp.Ghcb.response in
    if resp = 0 || resp = 1 then resp
    else if attempt >= max_retries then
      P.halt t.platform
        (Printf.sprintf "GHCB sanitizer: out-of-protocol hypercall response %#x persisted for %d attempts" resp (max_retries + 1))
    else begin
      Obs.Metrics.incr t.c_ghcb_sanitized;
      charge_on vcpu C.Monitor (backoff_cycles attempt);
      go (attempt + 1)
    end
  in
  go 0

let create_replica t vcpu ~vcpu_id ~(dom : Privdom.t) ~rip =
  let frame = alloc_vmsa_frame t in
  charge_on vcpu C.Monitor 2000 (* VMSA preparation: stack, GDT/IDT, page tables (§5.2) *);
  (match
     retry_insn t vcpu "replica VMSA rmpadjust" (fun () ->
         P.rmpadjust t.platform vcpu ~bucket:C.Monitor ~gpfn:frame ~target:(Privdom.vmpl dom)
           ~perms:Sevsnp.Perm.none ~vmsa:true ())
   with
  | Ok () -> ()
  | Error e -> P.halt t.platform ("replica VMSA rmpadjust: " ^ e));
  let vmsa = Sevsnp.Vmsa.create ~vcpu_id ~vmpl:(Privdom.vmpl dom) ~backing_gpfn:frame in
  vmsa.Sevsnp.Vmsa.cpl <- Privdom.cpl dom;
  vmsa.Sevsnp.Vmsa.rip <- rip;
  (match dom with
  | Privdom.Sec | Privdom.Mon -> vmsa.Sevsnp.Vmsa.ghcb_gpa <- t.mon_ghcb_gpa
  | Privdom.Enc | Privdom.Unt -> ());
  (match P.install_vmsa t.platform vmsa with Ok () -> () | Error e -> failwith e);
  Hashtbl.replace t.replicas (vcpu_id, dom) vmsa;
  (* Ask the hypervisor to register (and, for fresh VCPUs, launch) it. *)
  (match
     hypercall t vcpu
       (Sevsnp.Ghcb.Req_create_vcpu { vmsa_gpfn = frame; target_vmpl = Privdom.vmpl dom })
   with
  | 0 -> ()
  | _ -> P.halt t.platform "hypervisor refused to register a replica VCPU instance");
  vmsa

let create_all_replicas t vcpu ~vcpu_id =
  (* Dom_UNT first: a fresh VCPU is entered on its first registered
     instance, and §5.3 boots hotplugged VCPUs at VMPL-3. *)
  List.iter
    (fun dom ->
      let rip = match dom with Privdom.Unt -> t.kernel_entry | _ -> 0 in
      ignore (create_replica t vcpu ~vcpu_id ~dom ~rip))
    [ Privdom.Unt; Privdom.Sec; Privdom.Enc ]

(* --- initialization (§5.1, experiment E1) --- *)

let grant_region t vcpu (r : Layout.region) ~target ~perms =
  for gpfn = r.Layout.lo to r.Layout.hi - 1 do
    match
      retry_insn t vcpu "boot sweep" (fun () ->
          P.rmpadjust t.platform vcpu ~bucket:C.Monitor ~gpfn ~target ~perms ~vmsa:false ())
    with
    | Ok () -> ()
    | Error e -> P.halt t.platform ("boot sweep: " ^ e)
  done

(* PVALIDATE with the same bounded-retry treatment; used by the boot
   sweeps and delegation. *)
let mon_pvalidate t vcpu ~gpfn ~to_private =
  retry_insn t vcpu "pvalidate" (fun () ->
      P.pvalidate t.platform vcpu ~bucket:C.Monitor ~gpfn ~to_private ())

let initialize t ~kernel_entry =
  if t.initialized then failwith "VeilMon already initialized";
  t.kernel_entry <- kernel_entry;
  let vcpu = t.boot_vcpu in
  let l = t.layout in
  (* 1. Validate all guest memory (done by the kernel in a native CVM,
        by VeilMon under Veil — same cost, cancels in the E1 delta). *)
  for gpfn = 0 to l.Layout.total_frames - 1 do
    if not (Sevsnp.Rmp.is_vmsa t.platform.P.rmp gpfn) then
      match mon_pvalidate t vcpu ~gpfn ~to_private:true with
      | Ok () -> ()
      | Error e -> P.halt t.platform ("boot validate: " ^ e)
  done;
  (* 2. Protection sweep: grant the OS its memory, give Dom_SEC read
        access for service scans, keep Dom_MON/Dom_SEC regions dark. *)
  let os_all = Sevsnp.Perm.all in
  let rw = Sevsnp.Perm.rw in
  List.iter
    (fun r ->
      grant_region t vcpu r ~target:T.Vmpl3 ~perms:os_all;
      (* Dom_SEC gets read/write (no execute) over OS memory: services
         scan page tables, install module text, re-encrypt enclave
         pages — all in OS-owned frames. *)
      grant_region t vcpu r ~target:T.Vmpl1 ~perms:rw)
    [ l.Layout.kernel_text; l.Layout.kernel_data; l.Layout.kernel_free; l.Layout.idcb_region ];
  grant_region t vcpu l.Layout.svc_region ~target:T.Vmpl1 ~perms:rw;
  grant_region t vcpu l.Layout.log_region ~target:T.Vmpl1 ~perms:rw;
  (* 3. Protected-region registry for request sanitization (§8.1). *)
  add_protected_range t ~owner:Privdom.Mon l.Layout.mon_image.Layout.lo l.Layout.mon_image.Layout.hi;
  add_protected_range t ~owner:Privdom.Mon l.Layout.mon_heap.Layout.lo l.Layout.mon_heap.Layout.hi;
  add_protected_range t ~owner:Privdom.Mon l.Layout.vmsa_region.Layout.lo l.Layout.vmsa_region.Layout.hi;
  add_protected_range t ~owner:Privdom.Sec l.Layout.svc_region.Layout.lo l.Layout.svc_region.Layout.hi;
  add_protected_range t ~owner:Privdom.Sec l.Layout.log_region.Layout.lo l.Layout.log_region.Layout.hi;
  (* 4. Monitor GHCB (shared page) for hypercalls. *)
  let ghcb_frame = alloc_mon_frame t in
  (match mon_pvalidate t vcpu ~gpfn:ghcb_frame ~to_private:false with
  | Ok () -> ()
  | Error e -> P.halt t.platform ("monitor ghcb share: " ^ e));
  t.mon_ghcb_gpa <- T.gpa_of_gpfn ghcb_frame;
  (match P.set_ghcb t.platform vcpu t.mon_ghcb_gpa with Ok () -> () | Error e -> failwith e);
  (* 5. Per-VCPU IDCB (in OS-accessible memory, §5.2). *)
  Hashtbl.replace t.idcbs vcpu.V.id (Idcb.create ~gpfn:l.Layout.idcb_region.Layout.lo ~vcpu_id:vcpu.V.id);
  (* 6. Replicate the boot VCPU across domains (§5.2).  The VMPL-0
        launch instance is the Dom_MON replica. *)
  Hashtbl.replace t.replicas (vcpu.V.id, Privdom.Mon) (V.current_vmsa vcpu);
  create_all_replicas t vcpu ~vcpu_id:vcpu.V.id;
  (* 6b. Pre-provision the kernel's GHCB: the Dom_UNT kernel cannot
     create one itself (PVALIDATE is delegated, and delegation needs a
     GHCB — VeilMon breaks the cycle at boot). *)
  let kernel_ghcb_frame = l.Layout.idcb_region.Layout.hi - 1 in
  (match mon_pvalidate t vcpu ~gpfn:kernel_ghcb_frame ~to_private:false with
  | Ok () -> ()
  | Error e -> P.halt t.platform ("kernel ghcb share: " ^ e));
  (match P.register_ghcb t.platform (T.gpa_of_gpfn kernel_ghcb_frame) with
  | Ok _ -> ()
  | Error e -> failwith ("kernel ghcb: " ^ e));
  (vmsa_of t ~vcpu_id:vcpu.V.id ~dom:Privdom.Unt).Sevsnp.Vmsa.ghcb_gpa <-
    T.gpa_of_gpfn kernel_ghcb_frame;
  (* 7. Interrupt relay policy: deliver external interrupts to the OS. *)
  (match hypercall t vcpu (Sevsnp.Ghcb.Req_relay_interrupts_to T.Vmpl3) with
  | 0 -> ()
  | _ -> P.halt t.platform "hypervisor refused the interrupt relay policy");
  Hypervisor.Hv.kernel_handler_frame t.hv l.Layout.kernel_text.Layout.lo;
  (* 8. Charge the launch-measurement hashing of the boot image. *)
  let image_bytes = Layout.region_size l.Layout.mon_image + Layout.region_size l.Layout.kernel_text in
  charge t C.Crypto (C.hash_cost (image_bytes * T.page_size));
  t.initialized <- true

(* --- domain switches --- *)

let domain_switch t vcpu ~target =
  let ghcb =
    match P.ghcb_of_vcpu t.platform vcpu with
    | Some g -> g
    | None -> P.halt t.platform "domain switch without a GHCB"
  in
  (* One frame per relayed switch: its children are the exit legs, the
     host relay, and the entry legs — the paper's six-leg breakdown. *)
  let prof = t.platform.P.profiler in
  let prof_on = Obs.Profiler.enabled prof in
  if prof_on then
    Obs.Profiler.push prof ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu)
      "domain_switch";
  let target_vmpl = Privdom.vmpl target in
  (* The relay is a *request* to an untrusted hypervisor: verify the
     switch actually landed in the target instance before executing a
     single further instruction that assumes it.  A refused relay is
     retried with backoff; a hypervisor that keeps refusing earns an
     explicit halt (never a silent wrong-domain execution or a spin). *)
  let rec attempt n =
    ghcb.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_domain_switch { target_vmpl };
    P.vmgexit t.platform vcpu;
    if not (T.equal_vmpl (V.vmpl vcpu) target_vmpl) then begin
      if n >= max_retries then
        P.halt t.platform
          (Printf.sprintf "domain switch refused by hypervisor for %d attempts" (max_retries + 1))
      else begin
        Obs.Metrics.incr t.c_switch_retries;
        charge_on vcpu C.Switch (backoff_cycles n);
        attempt (n + 1)
      end
    end
  in
  attempt 0;
  if prof_on then Obs.Profiler.pop prof ~vcpu:vcpu.V.id ~ts:(V.rdtsc vcpu)

(* --- sanitization (§8.1) --- *)

let sanitize t vcpu (req : Idcb.request) : (unit, string) result =
  charge_on vcpu C.Monitor 250;
  let bad_frame gpfn = frame_is_protected t gpfn in
  match req with
  | Idcb.R_pvalidate { gpfn; _ } ->
      if bad_frame gpfn then Error "pvalidate target is a protected frame" else Ok ()
  | Idcb.R_log_fetch { dest_gpa; _ } ->
      if gpa_is_protected t dest_gpa then Error "log fetch destination points into protected memory"
      else Ok ()
  | Idcb.R_enclave_finalize d ->
      charge_on vcpu C.Monitor (20 * Guest_kernel.Enclave_desc.npages d);
      if List.exists bad_frame (Guest_kernel.Enclave_desc.frames d) then
        Error "enclave descriptor references protected frames"
      else if bad_frame d.Guest_kernel.Enclave_desc.ghcb_gpfn then Error "enclave GHCB frame is protected"
      else Ok ()
  | Idcb.R_enclave_restore { gpfn; _ } ->
      if bad_frame gpfn then Error "restore source is a protected frame" else Ok ()
  | _ -> Ok ()

(* --- built-in delegation handlers (§5.3) --- *)

let handle_delegation t vcpu (req : Idcb.request) : Idcb.response option =
  match req with
  | Idcb.R_pvalidate { gpfn; to_private } -> (
      t.stats.delegated_pvalidates <- t.stats.delegated_pvalidates + 1;
      match mon_pvalidate t vcpu ~gpfn ~to_private with
      | Ok () -> Some Idcb.Resp_ok
      | Error e -> Some (Idcb.Resp_error e))
  | Idcb.R_vcpu_boot { vcpu_id } ->
      t.stats.delegated_vcpu_boots <- t.stats.delegated_vcpu_boots + 1;
      (* §5 AP bring-up, hardened: the id is OS-provided data.  It must
         fit the per-VCPU IDCB + kernel-GHCB slots carved out of
         [idcb_region] (8 of each) and name the next hardware VCPU —
         both checked *before* anything is hot-plugged. *)
      let max_vcpus = Layout.region_size t.layout.Layout.idcb_region / 2 in
      if vcpu_id < 1 || vcpu_id >= max_vcpus then Some (Idcb.Resp_error "vcpu id out of range")
      else if vcpu_id <> P.vcpu_count t.platform then Some (Idcb.Resp_error "unexpected vcpu id")
      else begin
        let fresh = P.add_vcpu t.platform in
        assert (fresh.V.id = vcpu_id);
        Hashtbl.replace t.idcbs vcpu_id
          (Idcb.create ~gpfn:(t.layout.Layout.idcb_region.Layout.lo + vcpu_id) ~vcpu_id);
        (* Dom_UNT replica first: the hypervisor enters the fresh VCPU
           on it (APs boot at VMPL-3, §5.3), then the other domains. *)
        create_all_replicas t vcpu ~vcpu_id;
        ignore (create_replica t vcpu ~vcpu_id ~dom:Privdom.Mon ~rip:0);
        (* Per-AP kernel GHCB, provisioned exactly like the boot
           VCPU's: the Dom_UNT kernel cannot PVALIDATE one itself. *)
        let ghcb_frame = t.layout.Layout.idcb_region.Layout.hi - 1 - vcpu_id in
        (match mon_pvalidate t vcpu ~gpfn:ghcb_frame ~to_private:false with
        | Ok () -> ()
        | Error e -> P.halt t.platform ("ap kernel ghcb share: " ^ e));
        (match P.register_ghcb t.platform (T.gpa_of_gpfn ghcb_frame) with
        | Ok _ -> ()
        | Error e -> failwith ("ap kernel ghcb: " ^ e));
        (vmsa_of t ~vcpu_id ~dom:Privdom.Unt).Sevsnp.Vmsa.ghcb_gpa <- T.gpa_of_gpfn ghcb_frame;
        Some Idcb.Resp_ok
      end
  | _ -> None

(* --- services --- *)

let register_service t ~name ~target handler =
  t.services <- t.services @ [ { svc_name = name; svc_target = target; svc_handler = handler } ]

let classify_target (req : Idcb.request) : Privdom.t =
  match req with
  | Idcb.R_pvalidate _ | Idcb.R_vcpu_boot _ -> Privdom.Mon
  | _ -> Privdom.Sec

let dispatch t vcpu req =
  match handle_delegation t vcpu req with
  | Some r -> r
  | None ->
      let rec try_services = function
        | [] -> Idcb.Resp_error "no service owns this request"
        | s :: rest -> ( match s.svc_handler t vcpu req with Some r -> r | None -> try_services rest)
      in
      try_services t.services

(* Trusted-domain service of whatever request the IDCB currently
   carries.  Runs the sanitizer and dispatch at most once per IDCB
   sequence number: a duplicated or replayed hypervisor relay of an
   already-served request gets the cached response back instead of a
   second (possibly state-mutating) execution.  The replay cache is the
   caller's own per-VCPU shard — an array load, no shared structure. *)
let serve_pending t vcpu =
  let idcb = idcb_of t ~vcpu_id:vcpu.V.id in
  let seq = idcb.Idcb.seq in
  let sh = t.shards.(vcpu.V.id) in
  if t.replay_guard && sh.sh_seq = seq then begin
    Obs.Metrics.incr t.c_replays;
    sh.sh_resp
  end
  else begin
    let resp =
      match sanitize t vcpu idcb.Idcb.request with
      | Error e ->
          t.stats.sanitizer_rejections <- t.stats.sanitizer_rejections + 1;
          Obs.Metrics.incr t.c_sanitizer_rejections;
          Idcb.Resp_error e
      | Ok () -> dispatch t vcpu idcb.Idcb.request
    in
    sh.sh_seq <- seq;
    sh.sh_resp <- resp;
    resp
  end

(* One os_call through the single-server queue model: [arrival] is the
   caller's clock at entry, [service] the Monitor+Switch cycles the
   call charged (read from the caller's bucket counters, so the ledger
   shares E-scale's mon-share definition exactly).  Returns the
   queueing delay so the caller can emit it as a wait edge. *)
(* Global "machine time" proxy for arrivals: the furthest-ahead VCPU's
   window-relative clock.  A VCPU with nothing runnable charges no
   cycles, so its own clock lags real time; on hardware the wall clock
   keeps advancing for everyone, and the leading VCPU is the closest
   zero-allocation approximation the monitor can read.  Arrivals are
   therefore monotone across calls, and only calls landing inside a
   previous call's service window register as queued. *)
let rec max_clock bases vcpus acc =
  match vcpus with
  | [] -> acc
  | v :: rest ->
      let base = if v.V.id < Array.length bases then bases.(v.V.id) else 0 in
      let c = V.rdtsc v - base in
      max_clock bases rest (if c > acc then c else acc)

let ledger_enter t vcpu =
  let arrival = max_clock t.ledger_clock_base t.platform.P.vcpus_rev 0 in
  let queued = if t.mon_busy_until > arrival then t.mon_busy_until - arrival else 0 in
  (arrival, queued, C.read_bucket vcpu.V.counter C.Monitor + C.read_bucket vcpu.V.counter C.Switch)

let ledger_exit t vcpu ~tag ~arrival ~queued ~mon0 =
  let service = C.read_bucket vcpu.V.counter C.Monitor + C.read_bucket vcpu.V.counter C.Switch - mon0 in
  t.mon_busy_until <- arrival + queued + service;
  t.mon_entries <- t.mon_entries + 1;
  t.mon_busy_cycles <- t.mon_busy_cycles + service;
  t.mon_queued_cycles <- t.mon_queued_cycles + queued;
  t.tag_entries.(tag) <- t.tag_entries.(tag) + 1;
  t.tag_busy.(tag) <- t.tag_busy.(tag) + service;
  t.tag_queued.(tag) <- t.tag_queued.(tag) + queued;
  Obs.Metrics.add t.c_mon_busy_cycles service;
  Obs.Metrics.add t.c_mon_queued_cycles queued

let os_call t vcpu (req : Idcb.request) : Idcb.response =
  t.stats.os_calls <- t.stats.os_calls + 1;
  Obs.Metrics.incr t.c_os_calls;
  let arrival, queued, mon0 = ledger_enter t vcpu in
  (* An IDCB request is a request origin: mint a causal id if this VCPU
     is not already carrying one (e.g. an os_call issued from inside a
     traced syscall keeps the syscall's id). *)
  let prof = t.platform.P.profiler in
  let prof_on = Obs.Profiler.enabled prof in
  let minted = prof_on && Obs.Profiler.id prof ~vcpu:vcpu.V.id = 0 in
  if minted then Obs.Profiler.set_id prof ~vcpu:vcpu.V.id (Obs.Profiler.mint prof);
  if prof_on then
    Obs.Profiler.push prof ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu)
      "os_call";
  let tr = t.platform.P.tracer in
  if Obs.Trace.enabled tr then begin
    Obs.Trace.span_begin tr ~bucket:"monitor" ~id:(Obs.Profiler.id prof ~vcpu:vcpu.V.id)
      ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu) "os_call";
    (* The measured serialized slice: another VCPU's call is in service
       until [arrival + queued] on the monitor timeline.  The span is
       stamped on the caller's own clock (queueing is virtual — the
       caller's clock does not advance while parked). *)
    if queued > 0 then
      Obs.Trace.complete tr ~bucket:"monitor" ~id:(Obs.Profiler.id prof ~vcpu:vcpu.V.id)
        ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu) ~dur:queued
        (Obs.Trace.Wait Obs.Trace.Monitor_serial)
  end;
  let idcb = idcb_of t ~vcpu_id:vcpu.V.id in
  (* OS writes the request into the IDCB, stamped with the next
     sequence number — the monitor serves each sequence at most once. *)
  charge_on vcpu C.Copy (C.copy_cost (Idcb.request_size req));
  idcb.Idcb.seq <- idcb.Idcb.seq + 1;
  idcb.Idcb.request <- req;
  let target = classify_target req in
  domain_switch t vcpu ~target;
  (* Now running in the trusted domain: dedup, sanitize, then serve. *)
  let resp = serve_pending t vcpu in
  idcb.Idcb.response <- resp;
  idcb.Idcb.request <- Idcb.R_none;
  charge_on vcpu C.Copy (C.copy_cost (Idcb.response_size resp));
  domain_switch t vcpu ~target:Privdom.Unt;
  if Obs.Trace.enabled tr then
    Obs.Trace.span_end tr ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu))
      ~ts:(V.rdtsc vcpu) "os_call";
  if prof_on then begin
    Obs.Profiler.pop prof ~vcpu:vcpu.V.id ~ts:(V.rdtsc vcpu);
    if minted then Obs.Profiler.set_id prof ~vcpu:vcpu.V.id 0
  end;
  ledger_exit t vcpu ~tag:(Idcb.request_tag req) ~arrival ~queued ~mon0;
  resp

(* --- Veil-Ring: batched submission rings --- *)

(* Same placement rule as the IDCBs (§5.2): the ring must live in the
   less-privileged party's memory.  Checked twice, independently: the
   monitor's own protected-region registry (the ring may not alias
   VeilMon/Dom_SEC state) and the RMP (the frame must be plain private
   guest memory the OS can read and write — not a VMSA, not
   host-shared). *)
let register_ring t ring =
  let gpfn = Ring.gpfn ring in
  let vcpu_id = Ring.vcpu_id ring in
  if vcpu_id < 0 || vcpu_id >= Array.length t.rings then Error "ring vcpu id out of range"
  else if frame_is_protected t gpfn then Error "ring frame aliases protected memory"
  else if not (Sevsnp.Rmp.guest_can_rw t.platform.P.rmp gpfn ~vmpl:T.Vmpl3) then
    Error "ring frame is not OS-writable private memory"
  else begin
    t.rings.(vcpu_id) <- Some ring;
    Ok ()
  end

let ring_of t ~vcpu_id =
  if vcpu_id < 0 || vcpu_id >= Array.length t.rings then None else t.rings.(vcpu_id)

(* Producer side of a slot: the OS copies the request into its own
   ring memory (the Copy cost the IDCB write would have paid). *)
let ring_submit _t vcpu ring req =
  if Ring.submit ring req then begin
    charge_on vcpu C.Copy (C.copy_cost (Idcb.request_size req));
    true
  end
  else false

(* A batch with any VMPL-0-delegated slot is served entirely at
   Dom_MON — the more privileged domain can run the Dom_SEC services'
   dispatch, the reverse cannot happen. *)
let batch_target ring n =
  let rec go i =
    if i >= n then Privdom.Sec
    else
      match classify_target (Ring.peek ring i) with
      | Privdom.Mon -> Privdom.Mon
      | _ -> go (i + 1)
  in
  go 0

(* Trusted-domain service of every pending slot.  Replay suppression
   at (batch_seq, slot) granularity: the producer stamps a monotonic
   batch sequence at flush time, and a duplicated/replayed relay of an
   already-served batch answers from the cached per-slot responses
   (still sitting in the ring) without re-executing anything.  A slot
   that fails its framing check — e.g. scribbled by the OS or a
   DMA-capable device between submit and drain, the ring being OS
   memory — is rejected and journaled individually; the rest of the
   batch is served normally.  Degraded, never silent. *)
let serve_batch t vcpu ring =
  (match ring_of t ~vcpu_id:(Ring.vcpu_id ring) with
  | Some r when r == ring -> ()
  | _ -> failwith "serve_batch: unregistered ring");
  let sh = t.shards.(Ring.vcpu_id ring) in
  let bseq = Ring.batch_seq ring in
  if t.replay_guard && sh.sh_batch_seq = bseq then begin
    Obs.Metrics.add t.c_replays sh.sh_batch_n;
    sh.sh_batch_n
  end
  else begin
    let n = Ring.pending ring in
    (match t.platform.P.chaos with
    | Some plan when Chaos.Fault_plan.site_enabled plan Chaos.Fault_plan.Ring_slot_corrupt ->
        for i = 0 to n - 1 do
          if Chaos.Fault_plan.fire plan Chaos.Fault_plan.Ring_slot_corrupt then begin
            Ring.corrupt_slot ring i;
            P.chaos_mark t.platform (Some vcpu) "ring_slot_corrupt"
          end
        done
    | _ -> ());
    for i = 0 to n - 1 do
      let resp =
        if Ring.slot_is_corrupt ring i then begin
          t.stats.sanitizer_rejections <- t.stats.sanitizer_rejections + 1;
          Obs.Metrics.incr t.c_sanitizer_rejections;
          Obs.Metrics.incr t.c_ring_slot_rejected;
          Idcb.Resp_error "ring slot failed its framing check"
        end
        else
          match sanitize t vcpu (Ring.peek ring i) with
          | Error e ->
              t.stats.sanitizer_rejections <- t.stats.sanitizer_rejections + 1;
              Obs.Metrics.incr t.c_sanitizer_rejections;
              Idcb.Resp_error e
          | Ok () -> dispatch t vcpu (Ring.peek ring i)
      in
      Ring.set_response ring i resp
    done;
    sh.sh_batch_seq <- bseq;
    sh.sh_batch_n <- n;
    n
  end

(* One flush: a single Monitor+Switch entry amortized over every
   pending slot.  Accounted in the serialized-entry ledger as one
   entry under the dedicated [ring_flush] tag — the batch, not any one
   slot, holds the monitor. *)
let os_call_batch t vcpu ring =
  if Ring.is_empty ring then 0
  else begin
    let n = Ring.pending ring in
    Obs.Metrics.incr t.c_ring_flushes;
    Obs.Metrics.add t.c_ring_slots n;
    let arrival, queued, mon0 = ledger_enter t vcpu in
    let prof = t.platform.P.profiler in
    let prof_on = Obs.Profiler.enabled prof in
    let minted = prof_on && Obs.Profiler.id prof ~vcpu:vcpu.V.id = 0 in
    if minted then Obs.Profiler.set_id prof ~vcpu:vcpu.V.id (Obs.Profiler.mint prof);
    if prof_on then
      Obs.Profiler.push prof ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu)
        "os_call_batch";
    let tr = t.platform.P.tracer in
    if Obs.Trace.enabled tr then begin
      Obs.Trace.span_begin tr ~bucket:"monitor" ~id:(Obs.Profiler.id prof ~vcpu:vcpu.V.id)
        ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu) "os_call_batch";
      if queued > 0 then
        Obs.Trace.complete tr ~bucket:"monitor" ~id:(Obs.Profiler.id prof ~vcpu:vcpu.V.id)
          ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu) ~dur:queued
          (Obs.Trace.Wait Obs.Trace.Ring_flush)
    end;
    (* The producer stamps the batch sequence covering every pending
       slot (the slot copies were already charged at submit time). *)
    ignore (Ring.stamp_flush ring);
    let target = batch_target ring n in
    domain_switch t vcpu ~target;
    let served = serve_batch t vcpu ring in
    domain_switch t vcpu ~target:Privdom.Unt;
    (* Completion scan: the OS reads each slot's response out of its
       own ring memory, then retires the slots. *)
    for i = 0 to n - 1 do
      charge_on vcpu C.Copy (C.copy_cost (Idcb.response_size (Ring.response_at ring i)))
    done;
    Ring.consume ring;
    if Obs.Trace.enabled tr then
      Obs.Trace.span_end tr ~vcpu:vcpu.V.id ~vmpl:(T.vmpl_index (V.vmpl vcpu)) ~ts:(V.rdtsc vcpu)
        "os_call_batch";
    if prof_on then begin
      Obs.Profiler.pop prof ~vcpu:vcpu.V.id ~ts:(V.rdtsc vcpu);
      if minted then Obs.Profiler.set_id prof ~vcpu:vcpu.V.id 0
    end;
    ledger_exit t vcpu ~tag:Idcb.ring_flush_tag ~arrival ~queued ~mon0;
    served
  end

type wait_stats = {
  ws_entries : int;
  ws_busy_cycles : int;
  ws_queued_cycles : int;
  ws_by_type : (string * int * int * int) list;
}

let wait_stats t =
  let by_type = ref [] in
  for tag = Idcb.ntags - 1 downto 0 do
    if t.tag_entries.(tag) > 0 then
      by_type := (Idcb.tag_name tag, t.tag_entries.(tag), t.tag_busy.(tag), t.tag_queued.(tag)) :: !by_type
  done;
  { ws_entries = t.mon_entries; ws_busy_cycles = t.mon_busy_cycles;
    ws_queued_cycles = t.mon_queued_cycles; ws_by_type = !by_type }

let reset_wait_ledger t =
  t.mon_busy_until <- 0;
  (* Re-zero every VCPU's window clock: from here on, arrivals are
     relative to this instant of each VCPU's own timeline. *)
  Array.fill t.ledger_clock_base 0 (Array.length t.ledger_clock_base) 0;
  List.iter
    (fun vcpu ->
      if vcpu.V.id < Array.length t.ledger_clock_base then
        t.ledger_clock_base.(vcpu.V.id) <- V.rdtsc vcpu)
    (P.vcpus t.platform);
  t.mon_entries <- 0;
  t.mon_busy_cycles <- 0;
  t.mon_queued_cycles <- 0;
  Array.fill t.tag_entries 0 Idcb.ntags 0;
  Array.fill t.tag_busy 0 Idcb.ntags 0;
  Array.fill t.tag_queued 0 Idcb.ntags 0

(* --- service primitives --- *)

let mon_rmpadjust t vcpu ~gpfn ~target ~perms =
  retry_insn t vcpu "rmpadjust" (fun () ->
      P.rmpadjust t.platform vcpu ~bucket:C.Monitor ~gpfn ~target:(Privdom.vmpl target) ~perms
        ~vmsa:false ())

let set_enclave_ghcb_policy t vcpu ~ghcb_gpfn =
  (* Must be issued from Dom_MON (the hypervisor only honors VMPL-0). *)
  let here = Privdom.of_vmpl (V.vmpl vcpu) in
  let allowed = [ (T.Vmpl3, T.Vmpl2); (T.Vmpl2, T.Vmpl1) ] in
  let install () =
    match hypercall t vcpu (Sevsnp.Ghcb.Req_set_switch_policy { ghcb_gpfn; allowed }) with
    | 0 -> ()
    | _ -> P.halt t.platform "hypervisor refused the enclave GHCB switch policy"
  in
  if Privdom.equal here Privdom.Mon then install ()
  else begin
    domain_switch t vcpu ~target:Privdom.Mon;
    install ();
    domain_switch t vcpu ~target:here
  end

(* --- attestation & channel (§5.1) --- *)

let dh_public t = t.dh.Veil_crypto.Dh.public

let attestation_report t vcpu ~nonce =
  let here = Privdom.of_vmpl (V.vmpl vcpu) in
  let get () =
    let buf = Buffer.create 64 in
    Buffer.add_bytes buf nonce;
    Buffer.add_bytes buf (Veil_crypto.Bignum.to_bytes_be (dh_public t));
    let report_data = Veil_crypto.Sha256.digest_string (Buffer.contents buf) in
    P.attestation_report t.platform vcpu ~report_data
  in
  if Privdom.equal here Privdom.Mon then get ()
  else begin
    domain_switch t vcpu ~target:Privdom.Mon;
    let r = get () in
    domain_switch t vcpu ~target:here;
    r
  end

let session_key_with t ~peer_public =
  Veil_crypto.Dh.shared_secret ~secret:t.dh.Veil_crypto.Dh.secret ~peer_public ()

let weaken_replay_guard_for_test t = t.replay_guard <- false
