(* Veil-SMP: multi-VCPU guest execution.

   AP bring-up goes through the monitor exactly like the paper's §5
   protocol: the boot VCPU issues [R_vcpu_boot] over its IDCB, VeilMon
   hot-plugs the hardware VCPU, creates and validates the AP's
   per-domain VMSA replicas and IDCB, provisions the AP's kernel GHCB,
   and asks the (untrusted) hypervisor to enter the AP on its Dom_UNT
   instance.

   Execution is then driven by the host's deterministic interleaver
   ({!Hypervisor.Hv.Interleave}): each step picks one runnable VCPU,
   retargets the kernel at it, and steps at most one coroutine from
   that VCPU's runqueue ({!Guest_kernel.Sched.step_vcpu}, which steals
   from a sibling queue when its own has nothing runnable).  Same
   policy + seed + VCPU count => the identical schedule, so chaos
   replay-identity and E-scale reproducibility hold with SMP guests. *)

module K = Guest_kernel.Kernel
module S = Guest_kernel.Sched
module Hv = Hypervisor.Hv
module C = Sevsnp.Cycles

type t = {
  sys : Boot.veil_system;
  vcpus : Sevsnp.Vcpu.t array;
  sched : S.t;
  inter : Hv.Interleave.sched;
}

(* Kernel scheduling costs, charged to whichever VCPU the interleaver
   is stepping: a context switch is a register save/restore plus
   runqueue bookkeeping; a blocked-poll is the (much cheaper) wakeup
   predicate re-check the pre-SMP scheduler performed for free. *)
let context_switch_cost = 900
let blocked_poll_cost = 120

let bring_up ?(policy = Hv.Interleave.Round_robin) sys ~nvcpus () =
  if nvcpus < 1 then invalid_arg "Smp.bring_up: nvcpus must be >= 1";
  let kernel = sys.Boot.kernel in
  for vcpu_id = 1 to nvcpus - 1 do
    match (K.hooks kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "Smp: AP %d bring-up refused: %s" vcpu_id e)
  done;
  let all = Array.of_list (Sevsnp.Platform.vcpus sys.Boot.platform) in
  let vcpus = Array.sub all 0 nvcpus in
  let sched =
    S.create ~nvcpus
      ~on_context_switch:(fun () ->
        Sevsnp.Vcpu.charge (K.vcpu kernel) C.Kernel context_switch_cost)
      ~on_blocked_poll:(fun () -> Sevsnp.Vcpu.charge (K.vcpu kernel) C.Kernel blocked_poll_cost)
        (* Wait-span observability (Veil-Scope): suspensions and
           resumes are stamped on whichever VCPU the interleaver is
           stepping ([run] retargets the kernel before [step_vcpu]).
           The OS scheduler runs at VMPL 3. *)
      ~wait_obs:
        {
          S.wo_tracer = sys.Boot.platform.Sevsnp.Platform.tracer;
          wo_now = (fun () -> Sevsnp.Vcpu.rdtsc (K.vcpu kernel));
          wo_vcpu = (fun () -> (K.vcpu kernel).Sevsnp.Vcpu.id);
          wo_vmpl = 3;
        }
      ()
  in
  (* AP bring-up funnels heavy one-shot traffic through the monitor on
     wildly skewed clocks (the boot VCPU already paid for boot); start
     the serialized-monitor ledger window fresh so wait_stats describes
     steady-state SMP execution. *)
  Monitor.reset_wait_ledger sys.Boot.mon;
  { sys; vcpus; sched; inter = Hv.Interleave.create ~policy ~nvcpus () }

let sched t = t.sched
let nvcpus t = Array.length t.vcpus
let vcpu t i = t.vcpus.(i)
let spawn ?vcpu t ~name body = S.spawn ?vcpu t.sched ~name body

let run ?max_steps t =
  let kernel = t.sys.Boot.kernel in
  let boot_vcpu = t.vcpus.(0) in
  let runnable v = S.queue_live t.sched v in
  let budget = match max_steps with None -> max_int | Some n -> n in
  let rec loop () =
    if S.live t.sched > 0 then
      if Hv.Interleave.steps t.inter >= budget then
        (* Schedule-level watchdog (Veil-Explore): a schedule that
           never retires its coroutines is a livelock finding, reported
           with the same watchdog prefix the chaos step budget uses so
           the shared classifier maps it to [Watchdog]. *)
        raise
          (Sevsnp.Types.Cvm_halted
             (Printf.sprintf "chaos watchdog: interleaver step budget (%d) exceeded" budget))
      else
        match Hv.Interleave.next t.inter ~runnable with
        | None -> failwith "Smp.run: live coroutines on no runqueue"
        | Some v ->
            K.set_vcpu kernel t.vcpus.(v);
            if S.step_vcpu t.sched v then loop ()
            else
              (* No queue anywhere held a runnable task: every live
                 coroutine is blocked. *)
              raise (S.Deadlock (S.live_names t.sched))
  in
  (* Whatever happens, leave the kernel attributed to the boot VCPU —
     single-VCPU code after an SMP phase must not charge an AP. *)
  Fun.protect ~finally:(fun () -> K.set_vcpu kernel boot_vcpu) loop

let journal t = Hv.Interleave.journal t.inter
let schedule_steps t = Hv.Interleave.steps t.inter
let steals t = S.steals t.sched
