module C = Sevsnp.Cycles

(* Typed channel errors.  The one the fleet teardown/reconnect path
   cares about is [Disconnected]: the session is gone (never
   established, explicitly dropped, or the guest restarted underneath
   us) and the correct reaction is re-attest + retry — unlike an
   attestation refusal or detected tampering, which retrying cannot
   fix and must surface to the operator. *)
type error =
  | Disconnected  (* no live session: reconnect and retry *)
  | Attestation of string  (* handshake refused: wrong platform/image *)
  | Tampering of string  (* seal/MAC/hash-chain verification failed *)
  | Rejected of string  (* remote refused the request *)

let error_to_string = function
  | Disconnected -> "channel not connected"
  | Attestation m -> "attestation: " ^ m
  | Tampering m -> "channel tampering detected: " ^ m
  | Rejected m -> m

let retryable = function
  | Disconnected -> true
  | Attestation _ | Tampering _ | Rejected _ -> false

type t = {
  rng : Veil_crypto.Rng.t;
  platform_public : Veil_crypto.Bignum.t;
  expected_launch : bytes option;
  dh : Veil_crypto.Dh.keypair;
  mutable session : bytes option;
  mutable seq : int;
  mutable peer : Monitor.t option;
}

let create rng ~platform_public ~expected_launch =
  { rng; platform_public; expected_launch; dh = Veil_crypto.Dh.keygen rng; session = None; seq = 0; peer = None }

let connected t = t.session <> None
let session_key t = t.session

let disconnect t =
  t.session <- None;
  t.peer <- None

let connect t mon vcpu =
  let nonce = Veil_crypto.Rng.bytes t.rng 16 in
  let report = Monitor.attestation_report mon vcpu ~nonce in
  if not (Sevsnp.Attestation.verify ~public_key:t.platform_public report) then
    Error (Attestation "bad platform signature")
  else if not (Sevsnp.Types.equal_vmpl report.Sevsnp.Attestation.requester_vmpl Sevsnp.Types.Vmpl0) then
    Error (Attestation "report was not requested from VMPL-0")
  else begin
    let launch_ok =
      match t.expected_launch with
      | None -> true
      | Some expected -> Bytes.equal expected report.Sevsnp.Attestation.launch_measurement
    in
    if not launch_ok then Error (Attestation "launch measurement mismatch (wrong boot image?)")
    else begin
      (* The report must bind the DH public value VeilMon presented. *)
      let buf = Buffer.create 64 in
      Buffer.add_bytes buf nonce;
      Buffer.add_bytes buf (Veil_crypto.Bignum.to_bytes_be (Monitor.dh_public mon));
      let expected_rd = Veil_crypto.Sha256.digest_string (Buffer.contents buf) in
      if not (Bytes.equal expected_rd report.Sevsnp.Attestation.report_data) then
        Error (Attestation "report data does not bind the DH key")
      else begin
        t.session <-
          Some
            (Veil_crypto.Dh.shared_secret ~secret:t.dh.Veil_crypto.Dh.secret
               ~peer_public:(Monitor.dh_public mon) ());
        t.peer <- Some mon;
        Ok ()
      end
    end
  end

(* Sealed envelope: ct = ChaCha20(key, nonce(dir, seq), payload);
   tag = HMAC(key, dir || seq || ct).  Both sides derive the same
   session key; [dir] keeps the nonce spaces disjoint. *)

let nonce_of ~seq ~dir =
  let n = Bytes.make 12 '\000' in
  Bytes.set_int64_le n 0 (Int64.of_int seq);
  Bytes.set n 8 (Char.chr (dir land 0xff));
  n

let seal ~key ~seq ~dir payload =
  let ct = Veil_crypto.Chacha20.encrypt ~key ~nonce:(nonce_of ~seq ~dir) payload in
  let header = Bytes.create 9 in
  Bytes.set_int64_le header 0 (Int64.of_int seq);
  Bytes.set header 8 (Char.chr (dir land 0xff));
  let mac_input = Bytes.cat header ct in
  let tag = Veil_crypto.Hmac.mac ~key mac_input in
  Bytes.concat Bytes.empty [ header; tag; ct ]

let open_ ~key ~seq ~dir msg =
  if Bytes.length msg < 9 + 32 then Error "sealed message too short"
  else begin
    let header = Bytes.sub msg 0 9 in
    let got_seq = Int64.to_int (Bytes.get_int64_le header 0) in
    let got_dir = Char.code (Bytes.get header 8) in
    let tag = Bytes.sub msg 9 32 in
    let ct = Bytes.sub msg 41 (Bytes.length msg - 41) in
    if got_seq <> seq then Error "sealed message replay or reorder detected"
    else if got_dir <> dir then Error "sealed message direction mismatch"
    else if not (Veil_crypto.Hmac.verify ~key ~msg:(Bytes.cat header ct) ~tag) then
      Error "sealed message authentication failed"
    else Ok (Veil_crypto.Chacha20.encrypt ~key ~nonce:(nonce_of ~seq ~dir) ct)
  end

let with_session t k = match t.session with None -> Error Disconnected | Some key -> k key

let fetch_logs t slog vcpu =
  with_session t (fun key ->
      let seq = t.seq in
      t.seq <- seq + 1;
      (* user -> monitor: sealed request *)
      let request = seal ~key ~seq ~dir:0 (Bytes.of_string "fetch-logs") in
      match open_ ~key ~seq ~dir:0 request with
      | Error e -> Error (Rejected ("monitor rejected request: " ^ e))
      | Ok _ ->
          (* monitor -> user: sealed log payload + chain digest *)
          let lines = Slog.read_all slog in
          let digest = Slog.chain_digest slog in
          let payload = String.concat "\n" lines in
          Sevsnp.Vcpu.charge vcpu C.Crypto (C.cipher_cost (String.length payload) + C.hash_cost (String.length payload));
          let sealed = seal ~key ~seq ~dir:1 (Bytes.of_string payload) in
          (match open_ ~key ~seq ~dir:1 sealed with
          | Error e -> Error (Tampering e)
          | Ok plain ->
              let lines' =
                match Bytes.to_string plain with "" -> [] | s -> String.split_on_char '\n' s
              in
              if not (Slog.verify_chain ~lines:lines' ~digest) then
                Error (Tampering "log hash chain verification failed")
              else Ok lines'))

let verify_enclave t enc ~enclave_id ~expected =
  with_session t (fun _key ->
      match Encsvc.find enc enclave_id with
      | None -> Error (Rejected "no such enclave")
      | Some e -> Ok (Bytes.equal (Encsvc.measurement e) expected))
