module T = Sevsnp.Types
module C = Sevsnp.Cycles
module P = Sevsnp.Platform
module Pt = Sevsnp.Pagetable
module Ed = Guest_kernel.Enclave_desc

type stats = {
  mutable created : int;
  mutable destroyed : int;
  mutable rejected : int;
  mutable entries : int;
  mutable exits : int;
  mutable evictions : int;
  mutable restores : int;
}

type epage = {
  mutable frame : T.gpfn option;  (** [None] while evicted *)
  kind : Ed.page_kind;
  mutable prot : Guest_kernel.Ktypes.prot;
}

type enclave = {
  e_id : int;
  e_desc : Ed.t;
  e_key : bytes;  (** per-enclave paging key (§6.2) *)
  mutable e_meas : bytes;
  e_root : T.gpfn;  (** protected page-table clone root *)
  e_pages : (T.va, epage) Hashtbl.t;
  e_evicted : (T.va, bytes * int) Hashtbl.t;  (** integrity hash + freshness counter *)
  mutable e_ctr : int;
  mutable e_destroyed : bool;
  e_owner_vcpu : int;
  mutable e_shared_in : (int * T.va * int) list;  (** (owner id, va, npages) mapped in *)
}

type t = {
  mon : Monitor.t;
  stats : stats;
  enclaves : (int, enclave) Hashtbl.t;
  frames_in_use : (T.gpfn, int) Hashtbl.t;  (** global disjointness registry *)
  scheduled : (int, int) Hashtbl.t;  (** vcpu id -> enclave id its Dom_ENC VMSA holds *)
  c_entries : Obs.Metrics.counter;
  c_exits : Obs.Metrics.counter;
  g_degraded : Obs.Metrics.gauge;
      (** 1 after a persistent (retry-exhausted) RMPADJUST failure left
          an operation partially applied; the request still gets an
          explicit error instead of crashing the service *)
}

let stats t = t.stats
let monitor t = t.mon
let find t id = Hashtbl.find_opt t.enclaves id
let enclave_id e = e.e_id
let measurement e = e.e_meas
let pt_root e = e.e_root
let desc e = e.e_desc
let is_destroyed e = e.e_destroyed

let resident_frame e va =
  match Hashtbl.find_opt e.e_pages (va land lnot (T.page_size - 1)) with
  | Some p -> p.frame
  | None -> None

let charge vcpu b n = Sevsnp.Vcpu.charge vcpu b n

let perms_of_kind = function
  | Ed.Code -> Sevsnp.Perm.r_user_exec
  | Ed.Data | Ed.Stack | Ed.Heap -> Sevsnp.Perm.rw

let perms_of_prot (p : Guest_kernel.Ktypes.prot) =
  {
    Sevsnp.Perm.read = p.Guest_kernel.Ktypes.pr;
    write = p.Guest_kernel.Ktypes.pw;
    user_exec = p.Guest_kernel.Ktypes.px;
    super_exec = false;
  }

let flags_of_prot (p : Guest_kernel.Ktypes.prot) : Pt.flags =
  { Pt.present = true; writable = p.Guest_kernel.Ktypes.pw; user = true; nx = not p.Guest_kernel.Ktypes.px }

(* --- measurement (§6.2): contents + metadata, reproducible remotely --- *)

let measure_page m ~va ~kind ~(prot : Guest_kernel.Ktypes.prot) ~contents =
  Veil_crypto.Measurement.add_int m ~label:"va" va;
  Veil_crypto.Measurement.add_string m ~label:"kind" (Ed.kind_to_string kind);
  Veil_crypto.Measurement.add_int m ~label:"prot"
    ((if prot.Guest_kernel.Ktypes.pr then 4 else 0)
    lor (if prot.Guest_kernel.Ktypes.pw then 2 else 0)
    lor if prot.Guest_kernel.Ktypes.px then 1 else 0);
  Veil_crypto.Measurement.add_bytes m ~label:"contents" contents

let measure_expected ~binary ~npages_heap ~npages_stack ~base_va =
  let m = Veil_crypto.Measurement.create ~domain:"veil-enclave" in
  let ncode = max 1 ((Bytes.length binary + T.page_size - 1) / T.page_size) in
  let page i =
    let contents = Bytes.make T.page_size '\000' in
    let off = i * T.page_size in
    let n = min T.page_size (max 0 (Bytes.length binary - off)) in
    if n > 0 then Bytes.blit binary off contents 0 n;
    contents
  in
  for i = 0 to ncode - 1 do
    measure_page m ~va:(base_va + (i * T.page_size)) ~kind:Ed.Code ~prot:(Ed.prot_of_kind Ed.Code)
      ~contents:(page i)
  done;
  let zero = Bytes.make T.page_size '\000' in
  for i = 0 to npages_heap - 1 do
    measure_page m
      ~va:(base_va + ((ncode + i) * T.page_size))
      ~kind:Ed.Heap ~prot:(Ed.prot_of_kind Ed.Heap) ~contents:zero
  done;
  for i = 0 to npages_stack - 1 do
    measure_page m
      ~va:(base_va + ((ncode + npages_heap + i) * T.page_size))
      ~kind:Ed.Stack ~prot:(Ed.prot_of_kind Ed.Stack) ~contents:zero
  done;
  Veil_crypto.Measurement.digest m

(* --- finalize (§6.2 initialization) --- *)

exception Reject of string

(* Graceful degradation: [Monitor.mon_rmpadjust] already absorbs
   architecturally transient failures with bounded retry, so an [Error]
   reaching us is persistent.  Rather than crashing the whole service
   ([failwith]), flag the degraded state in the metrics registry and
   answer the request with an explicit error. *)
exception Degrade of string

let must = function Ok () -> () | Error e -> raise (Degrade e)

let degrade t e =
  Obs.Metrics.set t.g_degraded 1;
  Idcb.Resp_error ("VeilS-ENC: degraded: " ^ e)

let degraded t = Obs.Metrics.gauge_value t.g_degraded <> 0

(* Verified enclave-GHCB domain switch: under hypervisor fault
   injection a relayed switch may be refused (the GHCB comes back with
   an out-of-protocol response and no instance change), so re-request
   with cycle-accounted backoff and halt explicitly if the refusal
   persists.  The non-faulting path adds one VMPL comparison. *)
let switch_retries = 6

let ghcb_switch t vcpu ~target_vmpl ~what =
  let platform = Monitor.platform t.mon in
  let rec go attempt =
    (match P.ghcb_of_vcpu platform vcpu with
    | Some g -> g.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_domain_switch { target_vmpl }
    | None -> P.halt platform (what ^ " without GHCB"));
    P.vmgexit platform vcpu;
    if not (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu) target_vmpl) then
      if attempt >= switch_retries then
        P.halt platform
          (Printf.sprintf "%s: enclave domain switch refused by hypervisor for %d attempts" what
             (attempt + 1))
      else begin
        charge vcpu C.Switch (500 * (1 lsl min attempt 6));
        go (attempt + 1)
      end
  in
  go 0

(* Synchronize a VCPU's Dom_ENC instance with this enclave (§7's
   sketch of multi-threaded support: "VeilMon must create a VMSA for
   the enclave thread on each VCPU and synchronize them").  The
   replica VMSAs already exist (created at boot/hotplug); this fills
   in the enclave-specific state. *)
let schedule_enc_vmsa t vcpu enclave ~vcpu_id =
  if Hashtbl.find_opt t.scheduled vcpu_id = Some enclave.e_id then Ok ()
    (* the instance already holds this enclave's state: no resync *)
  else begin
    match
      (try Some (Monitor.vmsa_of t.mon ~vcpu_id ~dom:Privdom.Enc) with Failure _ -> None)
    with
    | None -> Error (Printf.sprintf "no Dom_ENC instance for vcpu %d" vcpu_id)
    | Some enc_vmsa ->
        charge vcpu C.Monitor 1_800 (* per-thread VMSA synchronization *);
        enc_vmsa.Sevsnp.Vmsa.rip <- enclave.e_desc.Ed.entry_va;
        enc_vmsa.Sevsnp.Vmsa.cr3 <- enclave.e_root;
        enc_vmsa.Sevsnp.Vmsa.ghcb_gpa <- T.gpa_of_gpfn enclave.e_desc.Ed.ghcb_gpfn;
        Hashtbl.replace t.scheduled vcpu_id enclave.e_id;
        Ok ()
  end


let svc_pt_io t vcpu : Pt.io =
  let platform = Monitor.platform t.mon in
  {
    Pt.read_u64 = P.read_u64 platform vcpu;
    write_u64 = P.write_u64 platform vcpu;
    alloc_frame =
      (fun () ->
        charge vcpu C.Monitor 400;
        Monitor.alloc_svc_frame t.mon);
    invalidate = (fun () -> P.tlb_shootdown platform);
  }

let finalize t vcpu (d : Ed.t) : Idcb.response =
  let platform = Monitor.platform t.mon in
  try
    if Hashtbl.mem t.enclaves d.Ed.enclave_id then raise (Reject "enclave id already in use");
    (* Invariant 1: one-to-one virtual-to-physical mapping. *)
    let seen_va = Hashtbl.create 64 and seen_frame = Hashtbl.create 64 in
    List.iter
      (fun (pg : Ed.page) ->
        charge vcpu C.Monitor 120;
        if Hashtbl.mem seen_va pg.Ed.page_va then raise (Reject "duplicate virtual page in layout");
        if Hashtbl.mem seen_frame pg.Ed.page_gpfn then raise (Reject "aliased physical frame in layout");
        Hashtbl.replace seen_va pg.Ed.page_va ();
        Hashtbl.replace seen_frame pg.Ed.page_gpfn ();
        (* Invariant 2: physical pages disjoint across all enclaves. *)
        if Hashtbl.mem t.frames_in_use pg.Ed.page_gpfn then
          raise (Reject "physical frame already belongs to another enclave"))
      d.Ed.pages;
    (* Clone the page tables into protected (Dom_SEC) memory. *)
    let io = svc_pt_io t vcpu in
    let root = io.Pt.alloc_frame () in
    let pages = Hashtbl.create 64 in
    List.iter
      (fun (pg : Ed.page) ->
        let prot = Ed.prot_of_kind pg.Ed.page_kind in
        Pt.map io ~root pg.Ed.page_va { Pt.pte_gpfn = pg.Ed.page_gpfn; pte_flags = flags_of_prot prot };
        Hashtbl.replace pages pg.Ed.page_va { frame = Some pg.Ed.page_gpfn; kind = pg.Ed.page_kind; prot })
      d.Ed.pages;
    (* Map the user GHCB and the shared ocall arena (untrusted memory
       the enclave may touch). *)
    Pt.map io ~root d.Ed.ghcb_va
      { Pt.pte_gpfn = d.Ed.ghcb_gpfn; pte_flags = flags_of_prot Guest_kernel.Ktypes.prot_rw };
    List.iter
      (fun (va, frame) ->
        Pt.map io ~root va { Pt.pte_gpfn = frame; pte_flags = flags_of_prot Guest_kernel.Ktypes.prot_rw })
      d.Ed.shared;
    (* Revoke the OS and grant the enclave (RMPADJUST via VeilMon's
       authority — we are at Dom_SEC, privileged over VMPL-2/3). *)
    List.iter
      (fun (pg : Ed.page) ->
        (match
           Monitor.mon_rmpadjust t.mon vcpu ~gpfn:pg.Ed.page_gpfn ~target:Privdom.Enc
             ~perms:(perms_of_kind pg.Ed.page_kind)
         with
        | Ok () -> ()
        | Error e -> raise (Reject e));
        match
          Monitor.mon_rmpadjust t.mon vcpu ~gpfn:pg.Ed.page_gpfn ~target:Privdom.Unt
            ~perms:Sevsnp.Perm.none
        with
        | Ok () -> ()
        | Error e -> raise (Reject e))
      d.Ed.pages;
    (* The shared arena stays OS-accessible but also opens to Dom_ENC. *)
    List.iter
      (fun (_, frame) ->
        match Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Enc ~perms:Sevsnp.Perm.rw with
        | Ok () -> ()
        | Error e -> raise (Reject e))
      d.Ed.shared;
    (* Measure contents + metadata. *)
    let m = Veil_crypto.Measurement.create ~domain:"veil-enclave" in
    List.iter
      (fun (pg : Ed.page) ->
        let contents = P.read platform vcpu (T.gpa_of_gpfn pg.Ed.page_gpfn) T.page_size in
        charge vcpu C.Crypto (C.hash_cost T.page_size);
        measure_page m ~va:pg.Ed.page_va ~kind:pg.Ed.page_kind ~prot:(Ed.prot_of_kind pg.Ed.page_kind)
          ~contents)
      d.Ed.pages;
    let meas = Veil_crypto.Measurement.digest m in
    (* Record ownership. *)
    List.iter (fun (pg : Ed.page) -> Hashtbl.replace t.frames_in_use pg.Ed.page_gpfn d.Ed.enclave_id) d.Ed.pages;
    Monitor.add_protected_frames t.mon ~owner:Privdom.Enc (Ed.frames d);
    let rng = platform.P.rng in
    let enclave =
      {
        e_id = d.Ed.enclave_id;
        e_desc = d;
        e_key = Veil_crypto.Rng.bytes rng 32;
        e_meas = meas;
        e_root = root;
        e_pages = pages;
        e_evicted = Hashtbl.create 8;
        e_ctr = 0;
        e_destroyed = false;
        e_owner_vcpu = vcpu.Sevsnp.Vcpu.id;
        e_shared_in = [];
      }
    in
    Hashtbl.replace t.enclaves d.Ed.enclave_id enclave;
    (* Configure the Dom_ENC instance through the (cache-aware)
       scheduler so the instance state and the scheduling cache can
       never diverge; install the hypervisor switch policy for the
       enclave's GHCB. *)
    (match schedule_enc_vmsa t vcpu enclave ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
    | Ok () -> ()
    | Error e -> raise (Reject e));
    Monitor.set_enclave_ghcb_policy t.mon vcpu ~ghcb_gpfn:d.Ed.ghcb_gpfn;
    t.stats.created <- t.stats.created + 1;
    Idcb.Resp_measurement meas
  with Reject reason ->
    t.stats.rejected <- t.stats.rejected + 1;
    Idcb.Resp_error ("VeilS-ENC: " ^ reason)

let destroy t vcpu (d : Ed.t) : Idcb.response =
  match Hashtbl.find_opt t.enclaves d.Ed.enclave_id with
  | None -> Idcb.Resp_error "VeilS-ENC: unknown enclave"
  | Some enclave -> (
      try
        let platform = Monitor.platform t.mon in
        let zero = Bytes.make T.page_size '\000' in
        Hashtbl.iter
          (fun _va (pg : epage) ->
            match pg.frame with
            | None -> ()
            | Some frame ->
                (* Scrub before returning memory to the OS. *)
                charge vcpu C.Copy (C.copy_cost T.page_size);
                P.write platform vcpu (T.gpa_of_gpfn frame) zero;
                must
                  (Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Unt
                     ~perms:Sevsnp.Perm.all);
                must
                  (Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Enc
                     ~perms:Sevsnp.Perm.none);
                Hashtbl.remove t.frames_in_use frame)
          enclave.e_pages;
        List.iter
          (fun (_, frame) ->
            must
              (Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Enc
                 ~perms:Sevsnp.Perm.none))
          d.Ed.shared;
        Monitor.remove_protected_frames t.mon (Ed.frames d);
        (* reclaim the protected page-table clone *)
        let table_frames =
          Sevsnp.Pagetable.table_frames ~read_u64:(P.raw_pt_read platform) ~root:enclave.e_root
        in
        List.iter (Monitor.free_svc_frame t.mon) table_frames;
        enclave.e_destroyed <- true;
        Hashtbl.remove t.enclaves d.Ed.enclave_id;
        Hashtbl.iter
          (fun vcpu_id eid -> if eid = enclave.e_id then Hashtbl.remove t.scheduled vcpu_id)
          (Hashtbl.copy t.scheduled);
        t.stats.destroyed <- t.stats.destroyed + 1;
        Idcb.Resp_ok
      with Degrade e -> degrade t e)

(* --- demand paging (§6.2) --- *)

let page_nonce enclave ~va ~ctr =
  let n = Bytes.make 12 '\000' in
  Bytes.set_int32_le n 0 (Int32.of_int (va lsr T.page_shift));
  Bytes.set_int32_le n 4 (Int32.of_int ctr);
  ignore enclave;
  n

let integrity_hash enclave ~va ~ctr plaintext =
  let buf = Buffer.create (T.page_size + 24) in
  Buffer.add_string buf (Printf.sprintf "page:%d:%d:" va ctr);
  Buffer.add_bytes buf plaintext;
  Veil_crypto.Hmac.mac ~key:enclave.e_key (Bytes.of_string (Buffer.contents buf))

let evict t vcpu ~enclave_id ~va : Idcb.response =
  match Hashtbl.find_opt t.enclaves enclave_id with
  | None -> Idcb.Resp_error "VeilS-ENC: unknown enclave"
  | Some enclave -> (
      match Hashtbl.find_opt enclave.e_pages va with
      | None -> Idcb.Resp_error "VeilS-ENC: no enclave page at this address"
      | Some ({ frame = Some frame; _ } as pg) -> (
          try
          let platform = Monitor.platform t.mon in
          let plaintext = P.read platform vcpu (T.gpa_of_gpfn frame) T.page_size in
          enclave.e_ctr <- enclave.e_ctr + 1;
          let ctr = enclave.e_ctr in
          charge vcpu C.Crypto (C.hash_cost T.page_size);
          let h = integrity_hash enclave ~va ~ctr plaintext in
          charge vcpu C.Crypto (C.cipher_cost T.page_size);
          let ciphertext =
            Veil_crypto.Chacha20.encrypt ~key:enclave.e_key ~nonce:(page_nonce enclave ~va ~ctr) plaintext
          in
          charge vcpu C.Copy (C.copy_cost T.page_size);
          P.write platform vcpu (T.gpa_of_gpfn frame) ciphertext;
          let io = svc_pt_io t vcpu in
          ignore (Pt.unmap io ~root:enclave.e_root va);
          must (Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Unt ~perms:Sevsnp.Perm.all);
          must (Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Enc ~perms:Sevsnp.Perm.none);
          Monitor.remove_protected_frames t.mon [ frame ];
          Hashtbl.remove t.frames_in_use frame;
          pg.frame <- None;
          Hashtbl.replace enclave.e_evicted va (h, ctr);
          t.stats.evictions <- t.stats.evictions + 1;
          Idcb.Resp_ok
          with Degrade e -> degrade t e)
      | Some { frame = None; _ } -> Idcb.Resp_error "VeilS-ENC: page already evicted")

let restore t vcpu ~enclave_id ~va ~gpfn : Idcb.response =
  match Hashtbl.find_opt t.enclaves enclave_id with
  | None -> Idcb.Resp_error "VeilS-ENC: unknown enclave"
  | Some enclave -> (
      match (Hashtbl.find_opt enclave.e_pages va, Hashtbl.find_opt enclave.e_evicted va) with
      | Some ({ frame = None; _ } as pg), Some (expected_hash, ctr) ->
          if Hashtbl.mem t.frames_in_use gpfn then Idcb.Resp_error "VeilS-ENC: frame belongs to an enclave"
          else begin
            let platform = Monitor.platform t.mon in
            let ciphertext = P.read platform vcpu (T.gpa_of_gpfn gpfn) T.page_size in
            charge vcpu C.Crypto (C.cipher_cost T.page_size);
            let plaintext =
              Veil_crypto.Chacha20.encrypt ~key:enclave.e_key ~nonce:(page_nonce enclave ~va ~ctr) ciphertext
            in
            charge vcpu C.Crypto (C.hash_cost T.page_size);
            let h = integrity_hash enclave ~va ~ctr plaintext in
            if not (Bytes.equal h expected_hash) then
              Idcb.Resp_error "VeilS-ENC: page integrity/freshness verification failed"
            else begin
              try
                (* Take the frame away from the OS, install plaintext,
                   remap in the protected tables. *)
                must
                  (Monitor.mon_rmpadjust t.mon vcpu ~gpfn ~target:Privdom.Unt ~perms:Sevsnp.Perm.none);
                must
                  (Monitor.mon_rmpadjust t.mon vcpu ~gpfn ~target:Privdom.Enc
                     ~perms:(perms_of_prot pg.prot));
                charge vcpu C.Copy (C.copy_cost T.page_size);
                P.write platform vcpu (T.gpa_of_gpfn gpfn) plaintext;
                let io = svc_pt_io t vcpu in
                Pt.map io ~root:enclave.e_root va { Pt.pte_gpfn = gpfn; pte_flags = flags_of_prot pg.prot };
                pg.frame <- Some gpfn;
                Hashtbl.remove enclave.e_evicted va;
                Hashtbl.replace t.frames_in_use gpfn enclave_id;
                Monitor.add_protected_frames t.mon ~owner:Privdom.Enc [ gpfn ];
                t.stats.restores <- t.stats.restores + 1;
                Idcb.Resp_ok
              with Degrade e -> degrade t e
            end
          end
      | Some { frame = Some _; _ }, _ -> Idcb.Resp_error "VeilS-ENC: page is resident"
      | _ -> Idcb.Resp_error "VeilS-ENC: no such evicted page")

(* --- §10 extensions: multi-VCPU scheduling & enclave memory sharing --- *)

let schedule_on t vcpu enclave ~target_vcpu =
  schedule_enc_vmsa t vcpu enclave ~vcpu_id:target_vcpu.Sevsnp.Vcpu.id

let shared_with _t enclave = enclave.e_shared_in

let set_measurement _t enclave m =
  enclave.e_meas <- m;
  enclave.e_desc.Ed.measurement <- Some m

let share_region t vcpu ~owner ~peer ~va ~npages =
  (* Dom_ENC -> Dom_SEC through the enclave GHCB, like change_perms. *)
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl1 ~what:"share_region";
  let result = ref (Ok ()) in
  let io = svc_pt_io t vcpu in
  (try
     if owner.e_destroyed || peer.e_destroyed then raise (Reject "enclave destroyed");
     for i = 0 to npages - 1 do
       let page_va = va + (i * T.page_size) in
       match Hashtbl.find_opt owner.e_pages page_va with
       | None -> raise (Reject "shared range outside the owner enclave")
       | Some { frame = None; _ } -> raise (Reject "shared page is evicted")
       | Some { frame = Some frame; prot; _ } ->
           charge vcpu C.Monitor 400;
           (* frames already carry Dom_ENC permissions; only the peer's
              protected tables need the mapping *)
           Pt.map io ~root:peer.e_root page_va { Pt.pte_gpfn = frame; pte_flags = flags_of_prot prot }
     done;
     peer.e_shared_in <- (owner.e_id, va, npages) :: peer.e_shared_in
   with Reject e -> result := Error e);
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl2 ~what:"share_region return";
  !result

(* --- permission-change synchronization (§6.2) --- *)

let pt_sync t vcpu ~pid:_ ~va ~npages ~prot : Idcb.response =
  (* Non-enclave permission changes in an enclave process must be
     mirrored into every protected table that maps the range (only the
     shared arena can legitimately overlap). *)
  let io = svc_pt_io t vcpu in
  Hashtbl.iter
    (fun _ enclave ->
      List.iter
        (fun (sva, _) ->
          if sva >= va && sva < va + (npages * T.page_size) then begin
            charge vcpu C.Monitor 250;
            ignore (Pt.protect io ~root:enclave.e_root sva (flags_of_prot prot))
          end)
        enclave.e_desc.Ed.shared)
    t.enclaves;
  Idcb.Resp_ok

(* --- runtime entry/exit (§6.2) --- *)

let enter t vcpu enclave =
  let platform = Monitor.platform t.mon in
  let prof = platform.P.profiler in
  let prof_on = Obs.Profiler.enabled prof in
  if prof_on then
    Obs.Profiler.push prof ~vcpu:vcpu.Sevsnp.Vcpu.id
      ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu) "enclave_enter";
  (* Scheduling (§6.2/§7): the Dom_ENC instance is shared by all
     enclaves on this VCPU, so its enclave-specific state is
     synchronized before entry (protected tables, user GHCB). *)
  (match schedule_enc_vmsa t vcpu enclave ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
  | Ok () -> ()
  | Error e -> P.halt platform ("enclave scheduling: " ^ e));
  (* The OS loads the enclave GHCB into the GHCB MSR before scheduling
     the enclave thread (privileged wrmsr). *)
  charge vcpu C.Kernel 150;
  (match P.set_ghcb platform vcpu (T.gpa_of_gpfn enclave.e_desc.Ed.ghcb_gpfn) with
  | Ok () -> ()
  | Error e -> P.halt platform ("enclave GHCB scheduling: " ^ e));
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl2 ~what:"enclave entry";
  t.stats.entries <- t.stats.entries + 1;
  Obs.Metrics.incr t.c_entries;
  if Obs.Trace.enabled platform.P.tracer then
    Obs.Trace.emit platform.P.tracer ~vcpu:vcpu.Sevsnp.Vcpu.id
      ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu)
      ~bucket:"monitor" ~arg:enclave.e_id
      ~id:(Obs.Profiler.id prof ~vcpu:vcpu.Sevsnp.Vcpu.id) Obs.Trace.Enclave_enter;
  if prof_on then
    Obs.Profiler.pop prof ~vcpu:vcpu.Sevsnp.Vcpu.id ~ts:(Sevsnp.Vcpu.rdtsc vcpu)

let exit_enclave t vcpu _enclave ~restore_ghcb =
  let platform = Monitor.platform t.mon in
  let prof = platform.P.profiler in
  let prof_on = Obs.Profiler.enabled prof in
  if prof_on then
    Obs.Profiler.push prof ~vcpu:vcpu.Sevsnp.Vcpu.id
      ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu) "enclave_exit";
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl3 ~what:"enclave exit";
  (* Back in Dom_UNT: the kernel restores its own GHCB MSR. *)
  charge vcpu C.Kernel 150;
  (match P.set_ghcb platform vcpu restore_ghcb with
  | Ok () -> ()
  | Error e -> P.halt platform ("kernel GHCB restore: " ^ e));
  t.stats.exits <- t.stats.exits + 1;
  Obs.Metrics.incr t.c_exits;
  if Obs.Trace.enabled platform.P.tracer then
    Obs.Trace.emit platform.P.tracer ~vcpu:vcpu.Sevsnp.Vcpu.id
      ~vmpl:(T.vmpl_index (Sevsnp.Vcpu.vmpl vcpu)) ~ts:(Sevsnp.Vcpu.rdtsc vcpu)
      ~bucket:"monitor" ~id:(Obs.Profiler.id prof ~vcpu:vcpu.Sevsnp.Vcpu.id)
      Obs.Trace.Enclave_exit;
  if prof_on then
    Obs.Profiler.pop prof ~vcpu:vcpu.Sevsnp.Vcpu.id ~ts:(Sevsnp.Vcpu.rdtsc vcpu)

let change_perms t vcpu enclave ~va ~npages ~prot =
  (* Dom_ENC -> Dom_SEC through the enclave GHCB (policy-permitted). *)
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl1 ~what:"perm change";
  let result = ref (Ok ()) in
  let io = svc_pt_io t vcpu in
  (try
     for i = 0 to npages - 1 do
       let page_va = va + (i * T.page_size) in
       match Hashtbl.find_opt enclave.e_pages page_va with
       | None -> raise (Reject "permission change outside enclave region")
       | Some pg ->
           pg.prot <- prot;
           charge vcpu C.Monitor 300;
           ignore (Pt.protect io ~root:enclave.e_root page_va (flags_of_prot prot));
           (match pg.frame with
           | Some frame -> (
               match
                 Monitor.mon_rmpadjust t.mon vcpu ~gpfn:frame ~target:Privdom.Enc ~perms:(perms_of_prot prot)
               with
               | Ok () -> ()
               | Error e -> raise (Reject e))
           | None -> ())
     done
   with Reject e -> result := Error e);
  (* Back to the enclave. *)
  ghcb_switch t vcpu ~target_vmpl:T.Vmpl2 ~what:"perm change return";
  !result

(* --- memory access through the protected tables --- *)

let read_mem ?(bucket = C.Compute) t vcpu enclave ~va ~len =
  let platform = Monitor.platform t.mon in
  charge vcpu bucket (C.copy_cost len);
  P.read_via_pt platform vcpu ~root:enclave.e_root va len

let write_mem ?(bucket = C.Compute) t vcpu enclave ~va data =
  let platform = Monitor.platform t.mon in
  charge vcpu bucket (C.copy_cost (Bytes.length data));
  P.write_via_pt platform vcpu ~root:enclave.e_root va data

let read_mem_into ?(bucket = C.Compute) t vcpu enclave ~va buf pos len =
  let platform = Monitor.platform t.mon in
  charge vcpu bucket (C.copy_cost len);
  P.read_into_via_pt platform vcpu ~root:enclave.e_root va buf pos len

let write_mem_sub ?(bucket = C.Compute) t vcpu enclave ~va data pos len =
  let platform = Monitor.platform t.mon in
  charge vcpu bucket (C.copy_cost len);
  P.write_sub_via_pt platform vcpu ~root:enclave.e_root va data pos len

(* --- service registration --- *)

let handler t _mon vcpu (req : Idcb.request) =
  match req with
  | Idcb.R_enclave_finalize d -> Some (finalize t vcpu d)
  | Idcb.R_enclave_destroy d -> Some (destroy t vcpu d)
  | Idcb.R_enclave_evict { enclave_id; va } -> Some (evict t vcpu ~enclave_id ~va)
  | Idcb.R_enclave_restore { enclave_id; va; gpfn } -> Some (restore t vcpu ~enclave_id ~va ~gpfn)
  | Idcb.R_pt_sync { pid; va; npages; prot } -> Some (pt_sync t vcpu ~pid ~va ~npages ~prot)
  | Idcb.R_enclave_schedule { enclave_id; vcpu_id } -> (
      match Hashtbl.find_opt t.enclaves enclave_id with
      | None -> Some (Idcb.Resp_error "VeilS-ENC: unknown enclave")
      | Some enclave -> (
          match schedule_enc_vmsa t vcpu enclave ~vcpu_id with
          | Ok () -> Some Idcb.Resp_ok
          | Error e -> Some (Idcb.Resp_error e)))
  | _ -> None

let install mon =
  let t =
    {
      mon;
      stats =
        { created = 0; destroyed = 0; rejected = 0; entries = 0; exits = 0; evictions = 0; restores = 0 };
      enclaves = Hashtbl.create 8;
      frames_in_use = Hashtbl.create 64;
      scheduled = Hashtbl.create 8;
      c_entries = Obs.Metrics.counter (Monitor.platform mon).P.metrics "encsvc.entries";
      c_exits = Obs.Metrics.counter (Monitor.platform mon).P.metrics "encsvc.exits";
      g_degraded = Obs.Metrics.gauge (Monitor.platform mon).P.metrics "encsvc.degraded";
    }
  in
  Monitor.register_service mon ~name:"veils-enc" ~target:Privdom.Sec (fun m vcpu req ->
      handler t m vcpu req);
  t
