module Privdom = Privdom
module Layout = Layout
module Idcb = Idcb
module Monitor = Monitor
module Kci = Kci
module Slog = Slog
module Encsvc = Encsvc
module Channel = Channel
module Vtpm = Vtpm
module Migration = Migration
module Boot = Boot

type system = Boot.veil_system

let version = "1.0.0"

let boot ?npages ?log_frames ?seed () = Boot.boot_veil ?npages ?log_frames ?seed ()

let boot_native ?npages ?seed () = Boot.boot_native ?npages ?seed ()

let attest (sys : system) ~nonce = Monitor.attestation_report sys.Boot.mon sys.Boot.vcpu ~nonce

let connect_user ?(seed = 1) (sys : system) =
  let platform = sys.Boot.platform in
  let user =
    Channel.create (Veil_crypto.Rng.create seed)
      ~platform_public:(Sevsnp.Attestation.platform_public_key platform.Sevsnp.Platform.attestation)
      ~expected_launch:(Sevsnp.Attestation.launch_measurement platform.Sevsnp.Platform.attestation)
  in
  match Channel.connect user sys.Boot.mon sys.Boot.vcpu with
  | Ok () -> Ok user
  | Error e -> Error (Channel.error_to_string e)

let protected_logs (sys : system) = Slog.read_all sys.Boot.slog
