module T = Sevsnp.Types
module P = Sevsnp.Platform
module K = Guest_kernel.Kernel

type veil_system = {
  platform : P.t;
  hv : Hypervisor.Hv.t;
  mon : Monitor.t;
  kernel : K.t;
  kci : Kci.t;
  slog : Slog.t;
  enc : Encsvc.t;
  vtpm : Vtpm.t;
  vcpu : Sevsnp.Vcpu.t;
  layout : Layout.t;
  boot_cycles : int;
}

type native_system = {
  n_platform : P.t;
  n_hv : Hypervisor.Hv.t;
  n_kernel : K.t;
  n_vcpu : Sevsnp.Vcpu.t;
  n_boot_cycles : int;
}

let default_npages = 8192

(* Veil-Chaos hook: when set, every [boot_veil] without an explicit
   [?chaos] argument arms the returned fault plan right after platform
   creation, so the boot sweeps themselves run under fault injection.
   The chaos driver installs here so workloads need no plumbing. *)
let default_chaos : (unit -> Chaos.Fault_plan.t option) ref = ref (fun () -> None)

(* Deterministic boot-image bytes so the launch measurement is stable
   for a given seed (remote attestation checks depend on this). *)
let image_segment ~seed ~which (r : Layout.region) =
  let rng = Veil_crypto.Rng.create (seed lxor Hashtbl.hash which) in
  let size = Layout.region_size r * T.page_size in
  (T.gpa_of_gpfn r.Layout.lo, Veil_crypto.Rng.bytes rng size)

let region_pair (r : Layout.region) = (r.Layout.lo, r.Layout.hi)

(* Hook construction is parameterized over two call shapes so the
   unbatched and Veil-Ring variants share one definition:
   [call] is a synchronous round trip whose response the kernel
   consumes; [defer] is fire-and-forget traffic (audit records,
   pt_syncs) a ring may batch. *)
let make_hooks (kernel : K.t) ~call ~defer =
  let lift_unit = function
    | Idcb.Resp_ok -> Ok ()
    | Idcb.Resp_error e -> Error e
    | _ -> Error "unexpected response"
  in
  let hooks =
    {
      Guest_kernel.Hooks.h_pvalidate =
        (fun ~gpfn ~to_private -> lift_unit (call (Idcb.R_pvalidate { gpfn; to_private })));
      h_vcpu_boot = (fun ~vcpu_id -> lift_unit (call (Idcb.R_vcpu_boot { vcpu_id })));
      h_module_load =
        (fun image ->
          (* The OS allocates; the service verifies, copies, relocates
             and write-protects (§6.1). *)
          let npages n = max 1 ((n + T.page_size - 1) / T.page_size) in
          let span n = List.init (npages n) (fun _ -> K.alloc_frame kernel) in
          let text_gpfns = span (Bytes.length image.Guest_kernel.Kmodule.text) in
          let data_gpfns = span (Bytes.length image.Guest_kernel.Kmodule.data) in
          match call (Idcb.R_module_load { image; text_gpfns; data_gpfns }) with
          | Idcb.Resp_loaded loaded -> Ok loaded
          | Idcb.Resp_error e ->
              List.iter (K.free_frame kernel) (text_gpfns @ data_gpfns);
              Error e
          | _ -> Error "unexpected response");
      h_module_unload = (fun loaded -> lift_unit (call (Idcb.R_module_unload loaded)));
      h_audit = (fun record -> defer (Idcb.R_log_append record));
      h_enclave_finalize =
        (fun desc ->
          match call (Idcb.R_enclave_finalize desc) with
          | Idcb.Resp_measurement m -> Ok m
          | Idcb.Resp_error e -> Error e
          | _ -> Error "unexpected response");
      h_enclave_destroy = (fun desc -> lift_unit (call (Idcb.R_enclave_destroy desc)));
      h_pt_sync =
        (fun ~pid ~va ~npages ~prot -> defer (Idcb.R_pt_sync { pid; va; npages; prot }));
    }
  in
  K.set_hooks kernel hooks

let install_hooks mon (kernel : K.t) _vcpu =
  (* Veil-SMP: hook calls come from whichever VCPU the kernel is
     currently executing on, not the boot VCPU the hooks were
     installed under — otherwise an AP's monitor requests would use
     VCPU 0's IDCB and VMSA replicas. *)
  let call req = Monitor.os_call mon (K.vcpu kernel) req in
  make_hooks kernel ~call ~defer:(fun req -> ignore (call req))

let boot_veil ?(npages = default_npages) ?log_frames ?(seed = 11) ?(activate_kci = true) ?chaos () =
  let layout = Layout.standard ?log_frames ~npages () in
  let platform = P.create ~seed ~npages () in
  (match match chaos with Some _ as c -> c | None -> !default_chaos () with
  | Some plan -> P.arm_chaos platform plan
  | None -> ());
  let hv = Hypervisor.Hv.create platform in
  let boot_image =
    [
      image_segment ~seed ~which:"veilmon" layout.Layout.mon_image;
      image_segment ~seed ~which:"kernel" layout.Layout.kernel_text;
    ]
  in
  let vcpu = Hypervisor.Hv.launch_cvm hv ~entry_name:"veilmon" ~boot_image in
  let mon = Monitor.create ~hv ~layout ~boot_vcpu:vcpu in
  let kernel =
    K.boot ~platform ~vcpu
      ~free_frames:(region_pair layout.Layout.kernel_free)
      ~text_frames:(region_pair layout.Layout.kernel_text)
      ~data_frames:(region_pair layout.Layout.kernel_data)
      ()
  in
  let kernel_entry = T.gpa_of_gpfn layout.Layout.kernel_text.Layout.lo in
  Monitor.initialize mon ~kernel_entry;
  (* Protected services are part of the measured boot image (§5.1). *)
  let kci =
    Kci.install mon ~vendor_public:(K.vendor_public_key kernel) ~symbols:(K.symbol_table kernel)
  in
  let slog = Slog.install mon in
  let enc = Encsvc.install mon in
  let vtpm = Vtpm.install mon in
  if activate_kci then Kci.activate kci vcpu;
  install_hooks mon kernel vcpu;
  (* Drop into the kernel at Dom_UNT. *)
  Monitor.domain_switch mon vcpu ~target:Privdom.Unt;
  K.finish_boot kernel;
  Hypervisor.Hv.set_interrupt_handler hv (K.handle_interrupt kernel);
  ignore (K.spawn kernel);
  {
    platform;
    hv;
    mon;
    kernel;
    kci;
    slog;
    enc;
    vtpm;
    vcpu;
    layout;
    boot_cycles = Sevsnp.Vcpu.rdtsc vcpu;
  }

(* --- Veil-Ring: opt-in batched submission rings --- *)

let default_ring_slots = 64

(* Flush once the ring is half full: deferral stays bounded (at most
   [slots/2] records ride the ring across syscalls) while one
   Monitor+Switch entry still amortizes over a whole watermark's worth
   of requests. *)
let ring_watermark slots = max 1 (slots / 2)

let flush_ring_of mon vcpu =
  match Monitor.ring_of mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
  | Some ring -> ignore (Monitor.os_call_batch mon vcpu ring)
  | None -> ()

let enable_rings ?(slots = default_ring_slots) sys () =
  let mon = sys.mon and kernel = sys.kernel in
  (* One ring per existing VCPU, carved from OS memory (the kernel's
     free-frame pool) — the same less-privileged-party placement rule
     as the IDCBs; the monitor re-checks it at registration. *)
  List.iter
    (fun vcpu ->
      let vcpu_id = vcpu.Sevsnp.Vcpu.id in
      if Monitor.ring_of mon ~vcpu_id = None then begin
        let gpfn = K.alloc_frame kernel in
        match Monitor.register_ring mon (Ring.create ~gpfn ~vcpu_id ~slots) with
        | Ok () -> ()
        | Error e -> failwith ("enable_rings: " ^ e)
      end)
    (P.vcpus sys.platform);
  (* Ring-aware hooks: fire-and-forget traffic rides the current
     VCPU's ring; synchronous calls flush it first so the trusted side
     observes this VCPU's requests in program order. *)
  let call req =
    let vcpu = K.vcpu kernel in
    flush_ring_of mon vcpu;
    Monitor.os_call mon vcpu req
  in
  let defer req =
    let vcpu = K.vcpu kernel in
    match Monitor.ring_of mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
    | Some ring ->
        if not (Monitor.ring_submit mon vcpu ring req) then begin
          (* full-ring backpressure: flush, then resubmit *)
          ignore (Monitor.os_call_batch mon vcpu ring);
          ignore (Monitor.ring_submit mon vcpu ring req)
        end
    | None -> ignore (Monitor.os_call mon vcpu req)
  in
  make_hooks kernel ~call ~defer;
  let wm = ring_watermark slots in
  K.set_ring_flush kernel
    (Some
       (fun () ->
         let vcpu = K.vcpu kernel in
         match Monitor.ring_of mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
         | Some ring when Ring.pending ring >= wm -> ignore (Monitor.os_call_batch mon vcpu ring)
         | _ -> ()))

let rings_enabled sys =
  List.exists
    (fun vcpu -> Monitor.ring_of sys.mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id <> None)
    (P.vcpus sys.platform)

(* Drain every VCPU's leftover slots (measurement-window barriers,
   audit-log reads: anything that must observe all deferred traffic). *)
let flush_rings sys =
  List.iter (fun vcpu -> flush_ring_of sys.mon vcpu) (P.vcpus sys.platform)

(* --- Veil-Pulse: anchoring telemetry into VeilS-LOG --- *)

(* Drain the sampler's pending anchor lines into the VeilS-LOG region
   through the ordinary (ringable) [R_log_append] path — the same
   execute-ahead chain that protects audit records now covers the
   telemetry chain heads, so a hypervisor that forges pulse data must
   also break the measured log.  Anchor records carry sysno [Write]
   (the telemetry writer) and pid 0.

   Only the anchors pending at entry are drained: the drain's own
   monitor calls advance the clock and can close further intervals,
   whose anchors ride the *next* drain — otherwise a short interval
   could chase its own tail forever. *)
let anchor_pulse sys =
  let pulse = sys.platform.P.pulse in
  let mon = sys.mon in
  let pending = Obs.Pulse.pending_anchors pulse in
  for _ = 1 to pending do
    match Obs.Pulse.pop_anchor pulse with
    | None -> ()
    | Some line ->
        let vcpu = K.vcpu sys.kernel in
        let record =
          {
            Guest_kernel.Audit.seq = Obs.Pulse.anchors_emitted pulse;
            cycles = Sevsnp.Vcpu.rdtsc vcpu;
            sys = Guest_kernel.Sysno.Write;
            pid = 0;
            detail = line;
          }
        in
        let req = Idcb.R_log_append record in
        (match Monitor.ring_of mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id with
        | Some ring ->
            if not (Monitor.ring_submit mon vcpu ring req) then begin
              ignore (Monitor.os_call_batch mon vcpu ring);
              ignore (Monitor.ring_submit mon vcpu ring req)
            end
        | None -> ignore (Monitor.os_call mon vcpu req))
  done;
  if pending > 0 then flush_rings sys;
  pending

let pulse_anchor_lines sys =
  (* The "pulse ..." lines VeilS-LOG retains — what a remote verifier
     reads back (chain-checked) to learn the trusted interval
     digests. *)
  List.filter
    (fun line ->
      (* anchors render as "... pid=0 pulse i=..." via Audit.to_line *)
      let rec find i =
        i + 6 <= String.length line
        && (String.sub line i 6 = "pulse " || find (i + 1))
      in
      find 0)
    (Slog.read_all sys.slog)

let boot_native ?(npages = default_npages) ?(seed = 11) () =
  let layout = Layout.standard ~npages () in
  let platform = P.create ~seed ~npages () in
  let hv = Hypervisor.Hv.create platform in
  let boot_image = [ image_segment ~seed ~which:"kernel" layout.Layout.kernel_text ] in
  let vcpu = Hypervisor.Hv.launch_cvm hv ~entry_name:"linux" ~boot_image in
  (* The native kernel owns everything between the image and the boot
     VMSA frame. *)
  let kernel =
    K.boot ~platform ~vcpu
      ~free_frames:(layout.Layout.kernel_data.Layout.hi, npages - 1)
      ~text_frames:(region_pair layout.Layout.kernel_text)
      ~data_frames:(region_pair layout.Layout.kernel_data)
      ()
  in
  K.finish_boot kernel;
  Hypervisor.Hv.set_interrupt_handler hv (K.handle_interrupt kernel);
  ignore (K.spawn kernel);
  {
    n_platform = platform;
    n_hv = hv;
    n_kernel = kernel;
    n_vcpu = vcpu;
    n_boot_cycles = Sevsnp.Vcpu.rdtsc vcpu;
  }
