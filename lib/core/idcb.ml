type request =
  | R_none
  | R_pvalidate of { gpfn : Sevsnp.Types.gpfn; to_private : bool }
  | R_vcpu_boot of { vcpu_id : int }
  | R_module_load of {
      image : Guest_kernel.Kmodule.image;
      text_gpfns : Sevsnp.Types.gpfn list;
      data_gpfns : Sevsnp.Types.gpfn list;
    }
  | R_module_unload of Guest_kernel.Kmodule.loaded
  | R_log_append of Guest_kernel.Audit.record
  | R_log_fetch of { dest_gpa : Sevsnp.Types.gpa; max : int }
  | R_enclave_finalize of Guest_kernel.Enclave_desc.t
  | R_enclave_destroy of Guest_kernel.Enclave_desc.t
  | R_enclave_evict of { enclave_id : int; va : Sevsnp.Types.va }
  | R_enclave_restore of { enclave_id : int; va : Sevsnp.Types.va; gpfn : Sevsnp.Types.gpfn }
  | R_pt_sync of { pid : int; va : Sevsnp.Types.va; npages : int; prot : Guest_kernel.Ktypes.prot }
  | R_enclave_schedule of { enclave_id : int; vcpu_id : int }
  | R_tpm_extend of { pcr : int; data : bytes }
  | R_tpm_quote of { nonce : bytes }

type response =
  | Resp_none
  | Resp_ok
  | Resp_loaded of Guest_kernel.Kmodule.loaded
  | Resp_measurement of bytes
  | Resp_count of int
  | Resp_quote of bytes  (** serialized, signed vTPM quote *)
  | Resp_error of string

type t = {
  gpfn : Sevsnp.Types.gpfn;
  vcpu_id : int;
  mutable request : request;
  mutable response : response;
  mutable seq : int;
      (* OS-side monotonic request sequence number; the monitor refuses
         to re-execute an already-served sequence (replayed relay) *)
}

let create ~gpfn ~vcpu_id = { gpfn; vcpu_id; request = R_none; response = Resp_none; seq = 0 }

let request_size = function
  | R_none -> 0
  | R_pvalidate _ -> 24
  | R_vcpu_boot _ -> 16
  | R_module_load { image; text_gpfns; data_gpfns } ->
      (* pointer-based: header + frame list; contents are read from OS
         memory by VeilS-KCI directly *)
      ignore image;
      64 + (16 * (List.length text_gpfns + List.length data_gpfns))
  | R_module_unload _ -> 32
  | R_log_append r -> 64 + String.length r.Guest_kernel.Audit.detail
  | R_log_fetch _ -> 24
  | R_enclave_finalize d | R_enclave_destroy d -> 64 + (24 * Guest_kernel.Enclave_desc.npages d)
  | R_enclave_evict _ -> 24
  | R_enclave_restore _ -> 32
  | R_pt_sync _ -> 32
  | R_enclave_schedule _ -> 24
  | R_tpm_extend { data; _ } -> 16 + Bytes.length data
  | R_tpm_quote { nonce } -> 8 + Bytes.length nonce

(* Dense request tags for per-call-type ledgers (Veil-Scope): array
   indexing instead of hashing keeps the os_call fast path
   allocation-free. *)

let ntags = 16

(* Tag 15 is not a request constructor: it labels a batched ring flush
   in the serialized-entry ledger, where the whole batch — not any one
   slot — is the unit of monitor service (Veil-Ring). *)
let ring_flush_tag = 15

let request_tag = function
  | R_none -> 0
  | R_pvalidate _ -> 1
  | R_vcpu_boot _ -> 2
  | R_module_load _ -> 3
  | R_module_unload _ -> 4
  | R_log_append _ -> 5
  | R_log_fetch _ -> 6
  | R_enclave_finalize _ -> 7
  | R_enclave_destroy _ -> 8
  | R_enclave_evict _ -> 9
  | R_enclave_restore _ -> 10
  | R_pt_sync _ -> 11
  | R_enclave_schedule _ -> 12
  | R_tpm_extend _ -> 13
  | R_tpm_quote _ -> 14

let tag_name = function
  | 0 -> "none"
  | 1 -> "pvalidate"
  | 2 -> "vcpu_boot"
  | 3 -> "module_load"
  | 4 -> "module_unload"
  | 5 -> "log_append"
  | 6 -> "log_fetch"
  | 7 -> "enclave_finalize"
  | 8 -> "enclave_destroy"
  | 9 -> "enclave_evict"
  | 10 -> "enclave_restore"
  | 11 -> "pt_sync"
  | 12 -> "enclave_schedule"
  | 13 -> "tpm_extend"
  | 14 -> "tpm_quote"
  | 15 -> "ring_flush"
  | _ -> "unknown"

let response_size = function
  | Resp_none -> 0
  | Resp_ok -> 8
  | Resp_loaded _ -> 48
  | Resp_measurement m -> Bytes.length m
  | Resp_count _ -> 8
  | Resp_quote q -> Bytes.length q
  | Resp_error e -> String.length e
