type region = { lo : Sevsnp.Types.gpfn; hi : Sevsnp.Types.gpfn }

type t = {
  total_frames : int;
  mon_image : region;
  kernel_text : region;
  kernel_data : region;
  mon_heap : region;
  svc_region : region;
  log_region : region;
  idcb_region : region;
  kernel_free : region;
  vmsa_region : region;
}

let standard ?log_frames ~npages () =
  if npages < 1024 then invalid_arg "Layout.standard: need at least 1024 frames";
  let log_frames = match log_frames with Some n -> n | None -> max 64 (npages / 32) in
  let cursor = ref 0 in
  let take n =
    let lo = !cursor in
    cursor := lo + n;
    { lo; hi = lo + n }
  in
  let mon_image = take 16 in
  let kernel_text = take 32 in
  let kernel_data = take 32 in
  let mon_heap = take (max 64 (npages / 64)) in
  let svc_region = take (max 64 (npages / 64)) in
  let log_region = take log_frames in
  (* 16 frames: the low 8 hold per-VCPU IDCBs (lo + vcpu_id), the high
     8 hold per-VCPU kernel GHCBs (hi - 1 - vcpu_id) — Veil-SMP supports
     up to 8 VCPUs with no frame shared between the two uses. *)
  let idcb_region = take 16 in
  let vmsa_frames = 64 in
  if !cursor + vmsa_frames >= npages then invalid_arg "Layout.standard: memory too small for layout";
  let kernel_free = { lo = !cursor; hi = npages - vmsa_frames } in
  let vmsa_region = { lo = npages - vmsa_frames; hi = npages } in
  {
    total_frames = npages;
    mon_image;
    kernel_text;
    kernel_data;
    mon_heap;
    svc_region;
    log_region;
    idcb_region;
    kernel_free;
    vmsa_region;
  }

let region_size r = r.hi - r.lo
let in_region r gpfn = gpfn >= r.lo && gpfn < r.hi

let pp fmt t =
  let p name r = Format.fprintf fmt "%-12s [%6d, %6d)@." name r.lo r.hi in
  p "mon_image" t.mon_image;
  p "kernel_text" t.kernel_text;
  p "kernel_data" t.kernel_data;
  p "mon_heap" t.mon_heap;
  p "svc" t.svc_region;
  p "log" t.log_region;
  p "idcb" t.idcb_region;
  p "kernel_free" t.kernel_free;
  p "vmsa" t.vmsa_region
