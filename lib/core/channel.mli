(** Remote-user secure channel (§5.1).

    Models the user side of Veil's attestation-rooted channel: verify
    a signed SEV-SNP report (launch measurement + requester VMPL +
    bound DH public value), derive a session key, and exchange
    sealed messages with VeilMon — e.g. to retrieve VeilS-LOG's
    hash-chained logs or an enclave measurement. *)

type t

type error =
  | Disconnected
      (** No live session — never connected, {!disconnect}ed, or the
          guest restarted underneath the user.  The only *retryable*
          error: re-run {!connect} (re-attesting the guest) and repeat
          the request. *)
  | Attestation of string  (** handshake refused: wrong platform or boot image *)
  | Tampering of string  (** seal/MAC/hash-chain verification failed in transit *)
  | Rejected of string  (** the remote end refused the request *)

val error_to_string : error -> string

val retryable : error -> bool
(** [true] only for {!Disconnected}: reconnect-and-retry is sound
    there and only there — attestation refusals and detected
    tampering must surface, not loop. *)

val create :
  Veil_crypto.Rng.t ->
  platform_public:Veil_crypto.Bignum.t ->
  expected_launch:bytes option ->
  t
(** [expected_launch] is the known-good boot-image measurement; [None]
    accepts any (trust-on-first-use, used by tests). *)

val connect : t -> Monitor.t -> Sevsnp.Vcpu.t -> (unit, error) result
(** Run the attestation handshake: nonce, signed report from VMPL-0,
    launch-measurement check, DH key agreement.  Also the reconnect
    path after {!disconnect} or a guest restart: point it at the new
    monitor/VCPU and a fresh session is derived (the old one is
    useless by design — keys are per-handshake). *)

val connected : t -> bool

val disconnect : t -> unit
(** Drop the session (fleet teardown, guest restart).  Subsequent
    sealed operations fail with {!Disconnected} until {!connect}
    succeeds again. *)

val session_key : t -> bytes option

(* Sealed messages (shared by both endpoints) *)

val seal : key:bytes -> seq:int -> dir:int -> bytes -> bytes
(** ChaCha20 + HMAC-SHA256 envelope; [dir] separates the two
    directions' nonce spaces. *)

val open_ : key:bytes -> seq:int -> dir:int -> bytes -> (bytes, string) result

(* High-level user operations *)

val fetch_logs : t -> Slog.t -> Sevsnp.Vcpu.t -> (string list, error) result
(** Retrieve all protected log lines over the channel and verify the
    hash chain; does not clear the store. *)

val verify_enclave : t -> Encsvc.t -> enclave_id:int -> expected:bytes -> (bool, error) result
(** Compare an enclave's measurement (obtained over the channel)
    against a locally computed expectation. *)
