(** Veil-Ring: batched os_call submission/completion rings (§10).

    An io_uring-style fixed-slot SPSC ring between the OS and VeilMon.
    Like the per-VCPU IDCBs (§5.2) the ring is carved from the *less
    privileged* party's memory — an OS-owned frame — so both sides can
    access it and the monitor trusts nothing it reads from a slot.

    The OS (single producer: the owning VCPU) submits deferrable
    requests — execute-ahead [R_log_append] records foremost, plus
    [R_pvalidate] page-state batches and [R_pt_sync] — and flushes the
    whole ring through one {!Monitor.os_call_batch}, paying a single
    Monitor+Switch entry for N slots instead of N.

    Replay suppression extends the per-IDCB sequence scheme to
    (batch_seq, slot) granularity: the producer stamps a monotonic
    batch sequence number at flush time, and the monitor serves each
    batch sequence at most once, answering a duplicated relay from the
    cached per-slot responses. *)

type t

val create : gpfn:Sevsnp.Types.gpfn -> vcpu_id:int -> slots:int -> t
(** [slots] must be a power of two in [2, 1024]; [gpfn] is the ring's
    backing frame in OS memory (the monitor re-checks placement at
    {!Monitor.register_ring}). *)

val gpfn : t -> Sevsnp.Types.gpfn
val vcpu_id : t -> int
val nslots : t -> int

val pending : t -> int
(** Submitted-but-undrained slot count (head - tail). *)

val is_empty : t -> bool
val is_full : t -> bool

val submit : t -> Idcb.request -> bool
(** Producer side: enqueue a request, returning [false] when the ring
    is full (backpressure — the producer must flush first).  Never
    allocates on the success path. *)

val batch_seq : t -> int
(** Producer-stamped sequence number of the batch currently (or last)
    flushed; bumped by {!stamp_flush}. *)

val stamp_flush : t -> int
(** Producer side, at flush entry: bump and return the batch sequence
    number covering every currently-pending slot. *)

(* Consumer (monitor) side.  Slot indices given to these accessors are
   logical offsets in [0, pending) from the current tail; the ring maps
   them through the wraparound mask internally. *)

val peek : t -> int -> Idcb.request
val set_response : t -> int -> Idcb.response -> unit
val response_at : t -> int -> Idcb.response

val consume : t -> unit
(** Retire every pending slot (the batch was served; responses remain
    readable until the slots are overwritten by later submissions). *)

val corrupt_slot : t -> int -> unit
(** Chaos (ring_slot_corrupt): scribble over a pending slot the way a
    hostile OS or a DMA-capable device could — the ring lives in OS
    memory, so a submitted request can change between submit and
    drain.  The monitor must reject the slot, not trust it. *)

val slot_is_corrupt : t -> int -> bool
(** Consumer-side framing check: a corrupted slot fails its framing
    checksum.  (The simulator models the checksum as a flag; real
    hardware would detect the mismatch when validating slot framing.) *)
