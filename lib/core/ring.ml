(* Veil-Ring submission/completion ring (see ring.mli).

   Single producer (the owning VCPU's kernel), single consumer
   (VeilMon draining a flush).  [head] and [tail] are monotonic
   counters; slot indices are [counter land mask], so wraparound across
   the slot boundary needs no special casing and full-vs-empty is just
   [head - tail].  The hot submit path is allocation-free: slots are
   preallocated records with mutable fields, and requests are stored by
   reference (the monitor sanitizes each one at drain time — the slot
   contents are untrusted either way). *)

type slot = {
  mutable sl_req : Idcb.request;
  mutable sl_resp : Idcb.response;
  mutable sl_corrupt : bool;
}

type t = {
  gpfn : Sevsnp.Types.gpfn;
  vcpu_id : int;
  mask : int;
  slots : slot array;
  mutable head : int;  (* next submission writes slot [head land mask] *)
  mutable tail : int;  (* oldest pending slot is [tail land mask] *)
  mutable batch_seq : int;
}

let create ~gpfn ~vcpu_id ~slots =
  if slots < 2 || slots > 1024 || slots land (slots - 1) <> 0 then
    invalid_arg "Ring.create: slots must be a power of two in [2, 1024]";
  {
    gpfn;
    vcpu_id;
    mask = slots - 1;
    slots =
      Array.init slots (fun _ ->
          { sl_req = Idcb.R_none; sl_resp = Idcb.Resp_none; sl_corrupt = false });
    head = 0;
    tail = 0;
    batch_seq = 0;
  }

let gpfn t = t.gpfn
let vcpu_id t = t.vcpu_id
let nslots t = t.mask + 1
let pending t = t.head - t.tail
let is_empty t = t.head = t.tail
let is_full t = t.head - t.tail > t.mask

let submit t req =
  if is_full t then false
  else begin
    let s = t.slots.(t.head land t.mask) in
    s.sl_req <- req;
    s.sl_resp <- Idcb.Resp_none;
    s.sl_corrupt <- false;
    t.head <- t.head + 1;
    true
  end

let batch_seq t = t.batch_seq

let stamp_flush t =
  t.batch_seq <- t.batch_seq + 1;
  t.batch_seq

let slot_at t i =
  if i < 0 || i >= pending t then invalid_arg "Ring: slot index out of pending range";
  t.slots.((t.tail + i) land t.mask)

let peek t i = (slot_at t i).sl_req
let set_response t i resp = (slot_at t i).sl_resp <- resp
let response_at t i = (slot_at t i).sl_resp
let consume t = t.tail <- t.head

let corrupt_slot t i =
  let s = slot_at t i in
  s.sl_req <- Idcb.R_none;
  s.sl_corrupt <- true

let slot_is_corrupt t i = (slot_at t i).sl_corrupt
