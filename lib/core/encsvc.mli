(** VeilS-ENC — shielded program execution (§6.2).

    Provides an SGX-like in-process enclave abstraction on top of
    Dom_ENC: the OS lays out the enclave region (untrusted), this
    service verifies the layout invariants (one-to-one virtual/physical
    mapping, disjoint physical pages across enclaves), clones the page
    tables into protected memory, revokes the OS's access with
    RMPADJUST, and measures the region for remote attestation.  At
    runtime it owns the enclave's page tables: demand paging (encrypt +
    integrity hash + freshness on evict, verify + decrypt on restore)
    and all enclave-region permission changes go through it. *)

type t
type enclave

type stats = {
  mutable created : int;
  mutable destroyed : int;
  mutable rejected : int;  (** invariant-scan failures *)
  mutable entries : int;
  mutable exits : int;
  mutable evictions : int;
  mutable restores : int;
}

val install : Monitor.t -> t
val stats : t -> stats
val monitor : t -> Monitor.t

val degraded : t -> bool
(** True once a persistent (retry-exhausted) RMPADJUST failure left a
    destroy/evict/restore partially applied.  The affected request got
    an explicit [Resp_error] rather than crashing the service; mirrored
    by the ["encsvc.degraded"] registry gauge. *)

val find : t -> int -> enclave option
val enclave_id : enclave -> int
val measurement : enclave -> bytes
val pt_root : enclave -> Sevsnp.Types.gpfn
val desc : enclave -> Guest_kernel.Enclave_desc.t
val is_destroyed : enclave -> bool

val resident_frame : enclave -> Sevsnp.Types.va -> Sevsnp.Types.gpfn option
(** Current frame backing an enclave page ([None] when evicted). *)

(* Runtime paths (used by the enclave SDK) *)

val enter : t -> Sevsnp.Vcpu.t -> enclave -> unit
(** Dom_UNT → Dom_ENC through the user-mapped GHCB.  The OS must have
    loaded the enclave's GHCB into the current instance's GHCB MSR
    (§6.2); this helper performs that scheduling step too. *)

val exit_enclave : t -> Sevsnp.Vcpu.t -> enclave -> restore_ghcb:Sevsnp.Types.gpa -> unit
(** Dom_ENC → Dom_UNT; restores the kernel GHCB MSR on the way out. *)

val schedule_on : t -> Sevsnp.Vcpu.t -> enclave -> target_vcpu:Sevsnp.Vcpu.t -> (unit, string) result
(** §10 multi-threading: synchronize [target_vcpu]'s Dom_ENC instance
    (entry point, protected tables, user GHCB) with the enclave so a
    thread can run there.  The OS scheduler requests this through
    VeilMon; the calling context must be a trusted domain. *)

val share_region :
  t ->
  Sevsnp.Vcpu.t ->
  owner:enclave ->
  peer:enclave ->
  va:Sevsnp.Types.va ->
  npages:int ->
  (unit, string) result
(** §10's alternative to Chancel: map [npages] of [owner]'s pages
    (starting at [va]) into [peer]'s protected tables, so two
    mutually-trusting enclaves share memory without SFI.  Requested
    from Dom_ENC through the enclave GHCB (like {!change_perms});
    both enclaves stay inaccessible to the OS. *)

val shared_with : t -> enclave -> (int * Sevsnp.Types.va * int) list
(** Regions shared into this enclave: (owner id, va, npages). *)

val change_perms :
  t -> Sevsnp.Vcpu.t -> enclave -> va:Sevsnp.Types.va -> npages:int -> prot:Guest_kernel.Ktypes.prot ->
  (unit, string) result
(** Enclave-initiated mprotect of its own region: Dom_ENC → Dom_SEC
    through the enclave GHCB, protected-table update, and back. *)

val read_mem :
  ?bucket:Sevsnp.Cycles.bucket -> t -> Sevsnp.Vcpu.t -> enclave -> va:Sevsnp.Types.va -> len:int -> bytes
(** Access enclave memory through the *protected* page tables with the
    current VCPU context's privileges — raises on permission
    violations and {!Sevsnp.Platform.Guest_page_fault} on evicted
    pages. *)

val write_mem :
  ?bucket:Sevsnp.Cycles.bucket -> t -> Sevsnp.Vcpu.t -> enclave -> va:Sevsnp.Types.va -> bytes -> unit

val read_mem_into :
  ?bucket:Sevsnp.Cycles.bucket ->
  t -> Sevsnp.Vcpu.t -> enclave -> va:Sevsnp.Types.va -> bytes -> int -> int -> unit
(** {!read_mem} into a caller-provided buffer — the SDK's ocall arena
    path uses this with a preallocated scratch buffer so crossing the
    arena allocates nothing per call. *)

val write_mem_sub :
  ?bucket:Sevsnp.Cycles.bucket ->
  t -> Sevsnp.Vcpu.t -> enclave -> va:Sevsnp.Types.va -> bytes -> int -> int -> unit
(** {!write_mem} of a slice of the given buffer. *)

val set_measurement : t -> enclave -> bytes -> unit
(** Trusted-side override used by enclave migration: a migrated
    enclave keeps its *original* launch measurement (its current page
    contents legitimately differ from the initial image). *)

val measure_expected :
  binary:bytes -> npages_heap:int -> npages_stack:int -> base_va:Sevsnp.Types.va -> bytes
(** What a remote user computes locally to check an enclave
    measurement (same construction as the service's). *)
